(* Benchmark and reproduction harness.

   The paper is an extended abstract whose "evaluation" is its running
   example: Tables I–V and Figures 1–2, plus the formal claims of
   §III–IV.  This harness regenerates every one of them mechanically
   (experiment ids T1–T5, F1, F2, E5, E7, C1, C2 of DESIGN.md) and adds
   the performance experiments C3/C4 and the engineering ablations
   backing EXPERIMENTS.md.

   Usage:
     dune exec bench/main.exe              reports + scaling + bechamel
     dune exec bench/main.exe -- report    paper reproduction only
     dune exec bench/main.exe -- scaling   scaling experiments only
     dune exec bench/main.exe -- store     checkpoint overhead (BENCH_store.json)
     dune exec bench/main.exe -- micro     bechamel micro-benchmarks only *)

module Hospital = Mdqa_hospital.Hospital
module Md_ontology = Mdqa_multidim.Md_ontology
module Context = Mdqa_context.Context
module Assessment = Mdqa_context.Assessment
module R = Mdqa_relational
module Metrics = Mdqa_obs.Metrics
module Trace = Mdqa_obs.Trace
open Mdqa_datalog

let emit_metrics = Array.exists (fun a -> a = "--emit-metrics") Sys.argv
let profile_runs = Array.exists (fun a -> a = "--profile") Sys.argv

module Profile = Mdqa_obs.Profile

let v = Term.var
let c s = Term.Const (R.Value.sym s)

let banner title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n  %s\n%s\n\n" line title line

let check label ok =
  Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") label;
  ok

let all_pass = ref true
let verify label ok = if not (check label ok) then all_pass := false

(* ------------------------------------------------------------------ *)
(* Paper reproduction reports *)

let report_t1 () =
  banner "T1 - Table I: Measurements (input)";
  R.Table_fmt.print ~title:"measurements" Hospital.measurements

let report_t2 () =
  banner "T2 - Table II: Measurements^q (computed by the quality context)";
  let a = Context.assess (Hospital.context ()) ~source:(Hospital.source ()) in
  match Context.quality_version a "measurements" with
  | None -> verify "quality version computed" false
  | Some q ->
    R.Table_fmt.print ~title:"measurements_q (computed)" q;
    print_newline ();
    verify "equals the paper's Table II"
      (R.Tuple.Set.equal (R.Relation.to_set q)
         (R.Relation.to_set Hospital.expected_measurements_q))

let report_t3 () =
  banner "T3 - Table III: WorkingSchedules (input)";
  R.Table_fmt.print ~title:"working_schedules" Hospital.working_schedules

let report_t4 () =
  banner "T4 - Table IV: Shifts (input + rule (8) downward completion)";
  R.Table_fmt.print ~title:"shifts (extensional)" Hospital.shifts;
  print_newline ();
  let m = Hospital.ontology () in
  let r = Md_ontology.chase m in
  R.Table_fmt.print ~title:"shifts after the chase"
    (R.Instance.get r.Chase.instance "shifts");
  print_newline ();
  let mark_w1_w2 =
    List.for_all
      (fun w ->
        R.Relation.scan
          (R.Instance.get r.Chase.instance "shifts")
          [ (0, R.Value.sym w); (1, R.Value.sym "Sep/9");
            (2, R.Value.sym "Mark") ]
        <> [])
      [ "W1"; "W2" ]
  in
  verify "Mark has generated shifts in W1 and W2 on Sep/9 (Example 2)"
    mark_w1_w2

let report_t5 () =
  banner "T5 - Table V: DischargePatients (input + rule (9), form (10))";
  R.Table_fmt.print ~title:"discharge_patients" Hospital.discharge_patients;
  print_newline ();
  let m = Hospital.ontology () in
  let r = Md_ontology.chase m in
  R.Table_fmt.print
    ~title:"patient_unit after the chase (null = unknown unit)"
    (R.Instance.get r.Chase.instance "patient_unit");
  print_newline ();
  let elvis =
    R.Relation.scan
      (R.Instance.get r.Chase.instance "patient_unit")
      [ (2, R.Value.sym "Elvis Costello") ]
  in
  verify "Elvis Costello placed in a fresh null unit (Example 6)"
    (match elvis with
     | [ t ] -> R.Value.is_null (R.Tuple.get t 0)
     | _ -> false)

let report_f1 () =
  banner "F1 - Figure 1: the extended multidimensional model";
  Format.printf "%a@." Mdqa_multidim.Md_schema.pp Hospital.md_schema;
  print_newline ();
  verify "Hospital dimension instance is strict and homogeneous"
    (Mdqa_multidim.Dim_instance.is_strict Hospital.hospital_instance
    && Mdqa_multidim.Dim_instance.is_homogeneous Hospital.hospital_instance);
  verify "Time dimension instance is strict and homogeneous"
    (Mdqa_multidim.Dim_instance.is_strict Hospital.time_instance
    && Mdqa_multidim.Dim_instance.is_homogeneous Hospital.time_instance);
  let m = Hospital.ontology () in
  verify "no referential-constraint (1) violations"
    (Md_ontology.referential_violations m = []);
  (* regenerate Figure 1 as a Graphviz file *)
  let dot = Mdqa_multidim.Md_schema.to_dot Hospital.md_schema in
  let path = "figure1.dot" in
  let oc = open_out path in
  output_string oc dot;
  close_out oc;
  Printf.printf "\nFigure 1 written to %s (render with: dot -Tpng %s)\n" path
    path;
  verify "figure1.dot generated"
    (String.length dot > 100
    && String.length dot < 100_000
    && String.sub dot 0 7 = "digraph")

let report_f2 () =
  banner "F2 - Figure 2: the MD context pipeline D -> C(+M) -> S^q -> Q^q";
  let ctx = Hospital.context () in
  Printf.printf "mappings (D into C):\n";
  List.iter (fun mp -> Format.printf "  %a@." Context.pp_mapping mp)
    ctx.Context.mappings;
  Printf.printf "\ncontextual rules (quality predicates and S^q):\n";
  List.iter (fun t -> Format.printf "  %a@." Tgd.pp t) ctx.Context.rules;
  let a = Context.assess ctx ~source:(Hospital.source ()) in
  Format.printf "\nchase: %a (%d firings, %d nulls)@." Chase.pp_outcome
    a.Context.chase.Chase.outcome a.Context.chase.Chase.stats.Chase.tgd_fires
    a.Context.chase.Chase.stats.Chase.nulls_created;
  Format.printf "\nquality report: %a@." Assessment.pp_report
    (Assessment.report a);
  Format.printf "\ndoctor's query: %a@." Query.pp Hospital.doctor_query;
  (match Context.clean_answers a Hospital.doctor_query with
   | Some answers ->
     List.iter
       (fun t -> Format.printf "  quality answer: %a@." R.Tuple.pp t)
       answers;
     verify "quality answer is exactly row 1 of Table I"
       (answers
       = [ R.Tuple.of_list
             [ R.Value.sym "Sep/5-12:10"; R.Value.sym "Tom Waits";
               R.Value.real 38.2 ] ])
   | None -> verify "clean answers computed" false)

let report_e5 () =
  banner "E5 - Example 5: Q'(d) <- Shifts(W1, d, Mark, s)";
  let m = Hospital.ontology () in
  let expected = [ R.Tuple.of_list [ R.Value.sym "Sep/9" ] ] in
  (match Md_ontology.certain_answers m Hospital.example5_query with
   | Query.Ok answers ->
     Format.printf "via chase: %a@." (Format.pp_print_list R.Tuple.pp) answers;
     verify "chase answer = {Sep/9}" (answers = expected)
   | _ -> verify "chase succeeded" false);
  let p = Md_ontology.proof_answers m Hospital.example5_query in
  Format.printf "via DeterministicWSQAns (%d steps): %a@." p.Proof.steps
    (Format.pp_print_list R.Tuple.pp)
    p.Proof.answers;
  verify "proof answer = {Sep/9}"
    (p.Proof.answers = expected && p.Proof.complete)

let report_e7 () =
  banner "E7 - Example 7: Q -> Q^q rewriting and upward navigation";
  let ctx = Hospital.context () in
  let q' = Context.rewrite_query ctx Hospital.doctor_query in
  Format.printf "Q : %a@." Query.pp Hospital.doctor_query;
  Format.printf "Q^q: %a@." Query.pp q';
  verify "Q^q targets measurements_q"
    (List.map Atom.pred q'.Query.body = [ "measurements_q" ]);
  (* the upward-only methodology of §IV on the PatientUnit fragment *)
  let up = Hospital.upward_ontology () in
  verify "upward-only fragment detected syntactically"
    (Md_ontology.is_upward_only up);
  let q =
    Query.make ~name:"tom_units" ~head:[ v "U"; v "D" ]
      [ Atom.make "patient_unit" [ v "U"; v "D"; c "Tom Waits" ] ]
  in
  match (Md_ontology.rewrite_answers up q, Md_ontology.certain_answers up q)
  with
  | Guard.Complete a, Query.Ok b ->
    Format.printf "FO-rewriting answers: %a@."
      (Format.pp_print_list R.Tuple.pp)
      a;
    verify "FO rewriting = chase on the upward fragment" (a = b)
  | _ -> verify "both engines answered" false

let report_c1 () =
  banner "C1 - Sec. III claim: the MD ontology is weakly-sticky Datalog+-";
  let m = Hospital.ontology () in
  Format.printf "%a@.@." Classes.pp_report (Md_ontology.classes m);
  let r = Md_ontology.classes m in
  verify "weakly sticky" r.Classes.weakly_sticky;
  verify "not sticky (join rules repeat marked variables)"
    (not r.Classes.sticky);
  List.iter
    (fun info -> Format.printf "  %a@." Mdqa_multidim.Dim_rule.pp_info info)
    m.Md_ontology.rule_infos

let report_c2 () =
  banner "C2 - Sec. III claim: EGD (6) is separable";
  let m = Hospital.ontology () in
  Format.printf "EGD: %a@." Egd.pp Hospital.egd_thermometer;
  let verdict = Md_ontology.separability m in
  Format.printf "categorical-positions criterion: %a@."
    Separability.pp_verdict verdict;
  verify "separable (equated variables at categorical positions only)"
    verdict.Separability.separable

let report_r1 () =
  banner
    "R1 - Example 1: the intensive-care tuple 'should be discarded' \
     (subset repair)";
  let module Repair = Mdqa_context.Repair in
  let ctx = Hospital.context ~raw_patient_ward:true () in
  (* without repair, the context is inconsistent *)
  let a0 = Context.assess ctx ~source:(Hospital.source ()) in
  (match a0.Context.chase.Chase.outcome with
   | Chase.Failed _ ->
     Format.printf "raw data: %a@." Chase.pp_outcome
       a0.Context.chase.Chase.outcome
   | _ -> ());
  verify "raw PatientWard makes the context inconsistent"
    (match a0.Context.chase.Chase.outcome with
     | Chase.Failed (Chase.Nc_violation _) -> true
     | _ -> false);
  match Repair.assess_repaired ctx ~source:(Hospital.source ()) with
  | Error e -> verify ("repair: " ^ e) false
  | Ok (a, removed) ->
    Printf.printf "discarded:\n";
    List.iter (fun d -> Format.printf "  %a@." Repair.pp_deletion d) removed;
    verify "exactly the paper's third tuple is discarded"
      (match removed with
       | [ d ] ->
         d.Repair.relation = "patient_ward"
         && R.Tuple.equal d.Repair.tuple
              (R.Tuple.of_list
                 [ R.Value.sym "W3"; R.Value.sym "Sep/7"; R.Value.sym "Tom Waits" ])
       | _ -> false);
    verify "assessment then recovers Table II"
      (match Context.quality_version a "measurements" with
       | Some q ->
         R.Tuple.Set.equal (R.Relation.to_set q)
           (R.Relation.to_set Hospital.expected_measurements_q)
       | None -> false);
    (match
       Repair.cautious_answers ctx ~source:(Hospital.source ())
         Hospital.doctor_query
     with
     | Ok (Guard.Complete answers) ->
       verify "cautious answers under all repairs = row 1"
         (answers
         = [ R.Tuple.of_list
               [ R.Value.sym "Sep/5-12:10"; R.Value.sym "Tom Waits";
                 R.Value.real 38.2 ] ])
     | Ok (Guard.Degraded _) ->
       verify "cautious answers complete (no budget trip)" false
     | Error e -> verify ("cautious answers: " ^ e) false)

let report_x1 () =
  banner "X1 - Explainability: why is row 1 up to quality?";
  let a =
    Context.assess ~provenance:true (Hospital.context ())
      ~source:(Hospital.source ())
  in
  let row1 =
    R.Tuple.of_list
      [ R.Value.sym "Sep/5-12:10"; R.Value.sym "Tom Waits"; R.Value.real 38.2 ]
  in
  match Context.explain a "measurements" row1 with
  | Ok tree ->
    Format.printf "%a@." Explain.pp tree;
    verify "derivation uses upward navigation (rule 7)"
      (List.mem "rule7_patient_unit" (Explain.rules_used tree));
    verify "derivation bottoms out in the recorded data"
      (List.exists
         (fun (p, _) -> p = "patient_ward")
         (Explain.extensional_support tree))
  | Error e -> verify ("explain: " ^ e) false

let reports () =
  report_t1 ();
  report_t2 ();
  report_t3 ();
  report_t4 ();
  report_t5 ();
  report_f1 ();
  report_f2 ();
  report_e5 ();
  report_e7 ();
  report_c1 ();
  report_c2 ();
  report_r1 ();
  report_x1 ()

(* ------------------------------------------------------------------ *)
(* Scaling experiments (C3, C4) and ablations *)

(* Wall-clock timing on the same monotonic clock the Guard uses —
   [Sys.time] measures CPU time and under-reports anything that blocks,
   and the raw system clock can step backwards mid-run. *)
let time_once f =
  let t0 = Guard.Clock.now () in
  let x = f () in
  (x, Guard.Clock.now () -. t0)

let median_time ?(runs = 3) f =
  let ts = List.init runs (fun _ -> snd (time_once f)) in
  List.nth (List.sort compare ts) (runs / 2)

let scaling_sizes = [ 20; 40; 80; 160; 320 ]

(* One checkpointed chase of the ontology, through a throwaway store;
   returns the guard's checkpoint-byte count and the wall time. *)
let checkpointed_chase ?(program_text = "% bench workload (not resumable)")
    m =
  let module Store = Mdqa_store.Store in
  let path = Filename.temp_file "mdqa_bench" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".journal"; path ^ ".tmp" ])
    (fun () ->
      let guard = Guard.unlimited () in
      let store =
        Store.create ~guard ~path ~program_text ~variant:Chase.Restricted ()
      in
      let _, t =
        time_once (fun () ->
            Chase.run ~guard
              ~checkpoint:(Store.checkpoint store)
              (Md_ontology.program m) (Md_ontology.instance m))
      in
      let snapshot_bytes =
        if Sys.file_exists path then
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> in_channel_length ic)
        else 0
      in
      ((Guard.consumption guard).Guard.checkpoint_bytes, snapshot_bytes, t))

let report_c3 () =
  banner "C3 - Sec. IV claim: chase + query answering scale polynomially";
  Printf.printf "%8s %10s %10s %12s %12s %10s %9s %8s %10s %10s\n" "patients"
    "pw-tuples" "facts-out" "chase(s)" "assess(s)" "slope" "g-steps" "g-nulls"
    "g-rows" "g-ckpt-B";
  let prev = ref None in
  let json_rows = ref [] in
  List.iter
    (fun n ->
      let g = Hospital.Gen.scale n in
      let m = Hospital.Gen.ontology g in
      let pw_tuples =
        R.Relation.cardinal (R.Instance.get m.Md_ontology.data "patient_ward")
      in
      let chase_t = median_time (fun () -> Md_ontology.chase m) in
      let facts_out =
        let r = Md_ontology.chase m in
        R.Instance.total_tuples r.Chase.instance
      in
      let ctx = Hospital.Gen.context g in
      let src = Hospital.Gen.source g in
      let assess_t = median_time (fun () -> Context.assess ctx ~source:src) in
      (* per-run resource consumption of one assessment, read back from
         the metrics registry the run records into: the same numbers
         every other consumer (exposition, Chase.stats) sees *)
      let guard = Guard.unlimited () in
      let metrics = Metrics.create () in
      (* with --profile, the same instrumented run also feeds the
         cost-attribution profiler, so each size's row carries a
         per-rule time breakdown next to its guard consumption *)
      let prof_snap =
        if not profile_runs then None
        else begin
          let p = Profile.create () in
          Profile.install p;
          Fun.protect ~finally:Profile.uninstall (fun () ->
              ignore (Context.assess ~guard ~metrics ctx ~source:src));
          Some (Profile.snapshot p)
        end
      in
      if prof_snap = None then
        ignore (Context.assess ~guard ~metrics ctx ~source:src);
      Guard.record_metrics guard metrics;
      let snap = Metrics.snapshot metrics in
      let gauge name =
        match Metrics.find_gauge snap name with
        | Some v -> int_of_float v
        | None -> 0
      in
      (* checkpoint I/O the durable variant of this size's chase writes *)
      let ckpt_bytes, _, _ = checkpointed_chase m in
      let slope =
        match !prev with
        | Some (s0, t0) when t0 > 0. && chase_t > 0. ->
          Printf.sprintf "%.2f"
            (log (chase_t /. t0)
            /. log (float_of_int pw_tuples /. float_of_int s0))
        | _ -> "-"
      in
      prev := Some (pw_tuples, chase_t);
      Printf.printf "%8d %10d %10d %12.4f %12.4f %10s %9d %8d %10d %10d\n" n
        pw_tuples facts_out chase_t assess_t slope
        (gauge "mdqa_guard_steps")
        (gauge "mdqa_guard_nulls")
        (gauge "mdqa_guard_rows") ckpt_bytes;
      (match prof_snap with
       | None -> ()
       | Some ps ->
         let hottest =
           List.sort
             (fun (_, (a : Profile.rule_stat)) (_, b) ->
               compare (b.Profile.rule_seconds, b.Profile.triggers)
                 (a.Profile.rule_seconds, a.Profile.triggers))
             ps.Profile.rules
         in
         List.iteri
           (fun i (name, (r : Profile.rule_stat)) ->
             if i < 3 then
               Printf.printf
                 "         hot rule #%d: %-28s %.4fs (fires=%d triggers=%d)\n"
                 (i + 1) name r.Profile.rule_seconds r.Profile.fires
                 r.Profile.triggers)
           hottest);
      if emit_metrics || prof_snap <> None then
        let profile_field =
          match prof_snap with
          | None -> ""
          | Some ps -> Printf.sprintf ", \"profile\": %s" (Profile.to_json ps)
        in
        json_rows :=
          Printf.sprintf
            "    {\"patients\": %d, \"chase_s\": %.6f, \"assess_s\": %.6f, \
             \"metrics\": %s%s}"
            n chase_t assess_t (Metrics.to_json snap) profile_field
          :: !json_rows)
    scaling_sizes;
  Printf.printf
    "\n(g-* columns: guard consumption of one assessment run, read from\n\
    \ the metrics registry [mdqa_guard_*] - chase steps, invented nulls,\n\
    \ join rows emitted by evaluation; g-ckpt-B is the checkpoint I/O a\n\
    \ durable chase of the same ontology writes)\n";
  Printf.printf
    "\n(slope = chase-time growth exponent vs input tuples between\n\
    \ consecutive sizes; polynomial data complexity shows as a small\n\
    \ bounded exponent)\n";
  if !json_rows <> [] then begin
    let json =
      Printf.sprintf
        "{\n  \"experiment\": \"c3\",\n  \"description\": \"chase + \
         assessment scaling, metrics-registry snapshots per size\",\n  \
         \"rows\": [\n%s\n  ]\n}\n"
        (String.concat ",\n" (List.rev !json_rows))
    in
    let oc = open_out "BENCH_c3.json" in
    output_string oc json;
    close_out oc;
    Printf.printf "\nBENCH_c3.json written\n"
  end

let report_c4 () =
  banner
    "C4 - Sec. IV claim: FO rewriting beats the chase on upward-only \
     ontologies";
  Printf.printf "%8s %14s %14s %14s %10s %10s %10s %12s\n" "patients"
    "rewrite(s)" "chase(s)" "proof(s)" "ch-facts" "ch-fires" "agree" "status";
  List.iter
    (fun n ->
      let g = Hospital.Gen.scale n in
      let hosp_inst, time_inst = Hospital.Gen.dim_instances g in
      let up =
        Md_ontology.make ~schema:Hospital.md_schema
          ~dim_instances:[ hosp_inst; time_inst; Hospital.device_instance ]
          ~data:(Hospital.Gen.data g)
          ~rules:[ Hospital.rule7 ] ()
      in
      let q =
        Query.make ~name:"p1_units" ~head:[ v "U"; v "D" ]
          [ Atom.make "patient_unit"
              [ v "U"; v "D"; c (Hospital.Gen.patient_name 1) ] ]
      in
      let rw = ref [] and ch = ref [] and pf = ref [] in
      let status = ref "ok" in
      let t_rw =
        median_time (fun () ->
            rw := Guard.value (Md_ontology.rewrite_answers up q))
      in
      (* a chase that degrades or fails is a row outcome, not an abort:
         the remaining sizes still run and the table says what happened *)
      let t_ch =
        median_time (fun () ->
            match Md_ontology.certain_answers up q with
            | Query.Ok l -> ch := l
            | Query.Degraded { partial; _ } ->
              ch := partial;
              status := "degraded"
            | Query.Inconsistent _ ->
              ch := [];
              status := "inconsistent")
      in
      let t_pf =
        median_time (fun () ->
            pf := (Md_ontology.proof_answers up q).Proof.answers)
      in
      (* what the chase arm materialized, read from a registry-recorded
         run of the same upward program *)
      let metrics = Metrics.create () in
      ignore
        (Chase.run ~metrics (Md_ontology.program up) (Md_ontology.instance up));
      let snap = Metrics.snapshot metrics in
      Printf.printf "%8d %14.5f %14.5f %14.5f %10d %10d %10b %12s\n" n t_rw
        t_ch t_pf
        (Metrics.counter_total snap "mdqa_chase_facts_total")
        (Metrics.counter_total snap "mdqa_chase_tgd_fires_total")
        (!rw = !ch && !ch = !pf)
        !status)
    scaling_sizes;
  Printf.printf
    "\n(rewriting evaluates a UCQ on the extensional data only; the chase\n\
    \ materializes every derivable fact first - the gap grows with size)\n"

let report_ablation_chase () =
  banner "Ablation - restricted vs oblivious chase, semi-naive vs naive";
  let g = Hospital.Gen.scale 80 in
  let m = Hospital.Gen.ontology g in
  let restricted = Md_ontology.chase ~variant:Chase.Restricted m in
  let oblivious = Md_ontology.chase ~variant:Chase.Oblivious m in
  Printf.printf "restricted chase: %6d nulls, %7d facts\n"
    restricted.Chase.stats.Chase.nulls_created
    (R.Instance.total_tuples restricted.Chase.instance);
  Printf.printf "oblivious chase:  %6d nulls, %7d facts\n"
    oblivious.Chase.stats.Chase.nulls_created
    (R.Instance.total_tuples oblivious.Chase.instance);
  verify "restricted chase invents no more nulls than the oblivious one"
    (restricted.Chase.stats.Chase.nulls_created
    <= oblivious.Chase.stats.Chase.nulls_created);
  let t_semi = median_time (fun () -> Md_ontology.chase m) in
  let p = Md_ontology.program m in
  let i = Md_ontology.instance m in
  let t_naive = median_time (fun () -> Chase.run ~semi_naive:false p i) in
  Printf.printf "semi-naive: %.4fs   naive: %.4fs\n" t_semi t_naive

let report_ablation_pruning () =
  banner "Ablation - UCQ containment pruning in the rewriter";
  let g = Hospital.Gen.scale 80 in
  let hosp_inst, time_inst = Hospital.Gen.dim_instances g in
  let up =
    Md_ontology.make ~schema:Hospital.md_schema
      ~dim_instances:[ hosp_inst; time_inst; Hospital.device_instance ]
      ~data:(Hospital.Gen.data g)
      ~rules:[ Hospital.rule7 ] ()
  in
  let q =
    Query.make ~name:"p1_units" ~head:[ v "U"; v "D" ]
      [ Atom.make "patient_unit"
          [ v "U"; v "D"; c (Hospital.Gen.patient_name 1) ] ]
  in
  let p = Md_ontology.program up in
  (match Rewrite.rewrite ~prune:false p q, Rewrite.rewrite ~prune:true p q with
   | Guard.Complete r0, Guard.Complete r1 ->
     Printf.printf "disjuncts without pruning: %d, with pruning: %d (%d pruned)\n"
       (List.length r0.Rewrite.ucq) (List.length r1.Rewrite.ucq)
       r1.Rewrite.pruned
   | _ -> print_endline "rewriting hit its budget");
  let t0 =
    median_time (fun () -> Rewrite.answers ~prune:false p (Md_ontology.instance up) q)
  in
  let t1 =
    median_time (fun () -> Rewrite.answers ~prune:true p (Md_ontology.instance up) q)
  in
  Printf.printf "evaluation: unpruned %.5fs, pruned %.5fs\n" t0 t1

let report_ablation_goal_directed () =
  banner "Ablation - goal-directed chase (rule relevance restriction)";
  let g = Hospital.Gen.scale 80 in
  let m = Hospital.Gen.ontology g in
  let p = Md_ontology.program m in
  let i = Md_ontology.instance m in
  (* a query over patient_unit does not need rule (8)'s shifts *)
  let q =
    Query.make ~name:"p1_units" ~head:[ v "U" ]
      [ Atom.make "patient_unit"
          [ v "U"; v "D"; c (Hospital.Gen.patient_name 1) ] ]
  in
  let restricted = Program.restrict_to_goals p ~goals:[ "patient_unit" ] in
  Printf.printf "rules: %d total, %d relevant to the query\n"
    (List.length p.Program.tgds)
    (List.length restricted.Program.tgds);
  let t_full =
    median_time (fun () -> Query.certain_answers p i q)
  in
  let t_goal =
    median_time (fun () -> Query.certain_answers ~goal_directed:true p i q)
  in
  Printf.printf "full chase: %.4fs   goal-directed: %.4fs\n" t_full t_goal;
  (match
     (Query.certain_answers p i q, Query.certain_answers ~goal_directed:true p i q)
   with
   | Query.Ok a, Query.Ok b ->
     verify "goal-directed answers unchanged" (a = b)
   | _ -> verify "both chases saturated" false)

let report_ablation_core () =
  banner "Ablation - core of the chase result";
  let m = Hospital.ontology () in
  let restricted = Md_ontology.chase ~variant:Chase.Restricted m in
  let oblivious = Md_ontology.chase ~variant:Chase.Oblivious m in
  let core = Core_inst.compute oblivious.Chase.instance in
  Printf.printf
    "hospital chase:   restricted %d facts / %d nulls,   oblivious %d facts \
     / %d nulls,   core(oblivious) %d facts / %d nulls\n"
    (R.Instance.total_tuples restricted.Chase.instance)
    (Core_inst.null_count restricted.Chase.instance)
    (R.Instance.total_tuples oblivious.Chase.instance)
    (Core_inst.null_count oblivious.Chase.instance)
    (R.Instance.total_tuples core)
    (Core_inst.null_count core);
  verify "core is hom-equivalent to the restricted result"
    (Core_inst.hom_equivalent core restricted.Chase.instance)

let report_ablation_egd_overhead () =
  banner "Ablation - EGD enforcement overhead at scale";
  Printf.printf "%8s %14s %14s\n" "patients" "no-EGD(s)" "with-EGD(s)";
  List.iter
    (fun n ->
      let g = Hospital.Gen.scale n in
      let m = Hospital.Gen.ontology g in
      let p0 = Md_ontology.program m in
      let egd =
        Egd.make ~name:"one_nurse_per_unit_day"
          ~body:
            [ Atom.make "working_schedules" [ v "U"; v "D"; v "N1"; v "T1" ];
              Atom.make "working_schedules" [ v "U"; v "D"; v "N2"; v "T2" ] ]
          (v "N1") (v "N2")
      in
      let p1 = Program.make ~tgds:p0.Program.tgds ~egds:[ egd ] () in
      let i = Md_ontology.instance m in
      let t0 = median_time (fun () -> Chase.run p0 i) in
      let t1 = median_time (fun () -> Chase.run p1 i) in
      Printf.printf "%8d %14.4f %14.4f\n" n t0 t1;
      (match (Chase.run p1 i).Chase.outcome with
       | Chase.Saturated -> ()
       | o ->
         Format.printf "  unexpected outcome with EGD: %a@." Chase.pp_outcome o))
    [ 20; 40; 80 ];
  Printf.printf
    "\n(the generated schedules satisfy the EGD, so this measures pure\n\
    \ checking cost: one full evaluation of the EGD body per round)\n"

let report_ablation_incremental () =
  banner "Ablation - incremental vs full re-assessment (one new tuple)";
  Printf.printf "%8s %14s %14s %10s\n" "patients" "full(s)" "incr(s)" "agree";
  List.iter
    (fun n ->
      let g = Hospital.Gen.scale n in
      let ctx = Hospital.Gen.context g in
      let src = Hospital.Gen.source g in
      let a0 = Context.assess ctx ~source:src in
      let new_row =
        (* a fresh instant is unknown to the Time dimension, so use the
           patient's day-1 instant with a revised value *)
        R.Tuple.of_list
          [ R.Value.sym (Hospital.Gen.day_name 1 ^ "-" ^ Hospital.Gen.patient_name 2 ^ "-01");
            R.Value.sym (Hospital.Gen.patient_name 2); R.Value.real 39.9 ]
      in
      let t_incr =
        median_time (fun () ->
            Context.assess_incremental a0 ~added:[ ("measurements", new_row) ])
      in
      let src' = R.Instance.copy src in
      ignore (R.Instance.add_tuple src' "measurements" new_row);
      let t_full = median_time (fun () -> Context.assess ctx ~source:src') in
      let a_incr =
        Context.assess_incremental a0 ~added:[ ("measurements", new_row) ]
      in
      let a_full = Context.assess ctx ~source:src' in
      let agree =
        match
          ( Context.quality_version a_incr "measurements",
            Context.quality_version a_full "measurements" )
        with
        | Some q1, Some q2 ->
          R.Tuple.Set.equal (R.Relation.to_set q1) (R.Relation.to_set q2)
        | _ -> false
      in
      Printf.printf "%8d %14.4f %14.4f %10b\n" n t_full t_incr agree)
    [ 20; 40; 80 ];
  Printf.printf
    "\n(the incremental chase only fires triggers involving the new\n\
    \ tuple's consequences)\n"

let report_store () =
  banner "Store - checkpoint overhead vs checkpoint-free chase";
  let module Store = Mdqa_store.Store in
  let workloads =
    [ ("hospital", fun () -> Hospital.ontology ());
      ("hospital-x80", fun () -> Hospital.Gen.ontology (Hospital.Gen.scale 80));
      ("telecom", fun () -> Mdqa_telecom.Telecom.ontology ()) ]
  in
  Printf.printf "%-14s %12s %12s %10s %12s %12s %12s %12s\n" "workload"
    "plain(s)" "ckpt(s)" "overhead" "ckpt-bytes" "snap-bytes" "recover(s)"
    "status";
  let rows =
    List.map
      (fun (name, mk) ->
        let m = mk () in
        let plain_t =
          median_time (fun () ->
              Chase.run (Md_ontology.program m) (Md_ontology.instance m))
        in
        let ckpt_bytes, snapshot_bytes, ckpt_t = checkpointed_chase m in
        (* recovery cost: load + journal replay of a completed store.  A
           store that fails to load is this row's outcome — the other
           workloads still get measured. *)
        let status = ref "ok" in
        let recover_t =
          let path = Filename.temp_file "mdqa_bench" ".snap" in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun p -> if Sys.file_exists p then Sys.remove p)
                [ path; path ^ ".journal"; path ^ ".tmp" ])
            (fun () ->
              let guard = Guard.unlimited () in
              let store =
                Store.create ~guard ~path
                  ~program_text:"% bench workload (not resumable)"
                  ~variant:Chase.Restricted ()
              in
              ignore
                (Chase.run ~guard
                   ~checkpoint:(Store.checkpoint store)
                   (Md_ontology.program m) (Md_ontology.instance m));
              median_time (fun () ->
                  match Store.load ~path with
                  | Ok _ -> ()
                  | Error _ -> status := "degraded:load-failed"))
        in
        let overhead = if plain_t > 0. then ckpt_t /. plain_t else 1. in
        Printf.printf "%-14s %12.4f %12.4f %9.2fx %12d %12d %12.5f %12s\n"
          name plain_t ckpt_t overhead ckpt_bytes snapshot_bytes recover_t
          !status;
        Printf.sprintf
          "    {\"workload\": %S, \"chase_s\": %.6f, \
           \"chase_checkpointed_s\": %.6f, \"overhead_ratio\": %.4f, \
           \"checkpoint_bytes\": %d, \"snapshot_bytes\": %d, \
           \"recover_s\": %.6f, \"status\": %S}"
          name plain_t ckpt_t overhead ckpt_bytes snapshot_bytes recover_t
          !status)
      workloads
  in
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"store\",\n  \"description\": \"checkpoint \
       overhead vs checkpoint-free chase\",\n  \"rows\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" rows)
  in
  let oc = open_out "BENCH_store.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\n(overhead = durable chase wall time / plain chase wall time;\n\
    \ recover = Store.load, i.e. snapshot read + journal replay)\n";
  Printf.printf "\nBENCH_store.json written\n"

(* ------------------------------------------------------------------ *)
(* Serve: request latency against a warm forked server, plus a drain
   check.  The server child runs the real event loop over a Unix
   socket; the parent is the real retrying client. *)

let report_serve () =
  banner "Serve - concurrent-client throughput, inline vs worker pool";
  let module Service = Mdqa_server.Service in
  let module Server = Mdqa_server.Server in
  let module Sclient = Mdqa_server.Client in
  let module Sproto = Mdqa_server.Protocol in
  let n_facts = 400 and n_clients = 8 and per_client = 100 in
  let n_requests = n_clients * per_client in
  let program_file = Filename.temp_file "mdqa_serve_bench" ".dl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists program_file then Sys.remove program_file)
  @@ fun () ->
  let oc = open_out program_file in
  for i = 1 to n_facts do
    Printf.fprintf oc "edge(n%d, n%d).\n" i (i + 1)
  done;
  output_string oc "linked(X, Y) :- edge(X, Y).\n";
  output_string oc "linked(X, Z) :- edge(X, Y), edge(Y, Z).\n";
  close_out oc;
  let request =
    {|{"kind":"query","query":"q(X, Z) :- linked(X, Z)","engine":"chase"}|}
  in
  (* One measured configuration: a forked server (workers as given),
     [n_clients] forked clients hammering it concurrently — a single
     sequential client can never expose pool parallelism — and a
     graceful-drain check on the way down. *)
  let run_config ~label ~workers =
    let sock = Filename.temp_file "mdqa_serve_bench" ".sock" in
    Sys.remove sock;
    let lat_files =
      List.init n_clients (fun i ->
          Filename.temp_file (Printf.sprintf "mdqa_serve_lat%d" i) ".txt")
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          (sock :: lat_files))
    @@ fun () ->
    (* don't let children flush inherited copies of our stdout buffer *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      Stdlib.exit
        (match Service.load ~program_file () with
         | Error _ -> 1
         | Ok svc ->
           let cfg =
             { (Server.default_config (Server.Unix_path sock)) with
               Server.workers;
               watchdog = Some 30. }
           in
           Server.run cfg svc)
    | server_pid ->
      let probe = Sclient.create ~addr:sock () in
      let up = Sclient.ping probe in
      Sclient.close probe;
      (match up with
       | Error e ->
         Printf.printf "serve bench (%s): server never came up: %s\n" label e;
         verify (Printf.sprintf "serve bench %s server came up" label) false;
         Unix.kill server_pid Sys.sigkill;
         ignore (Unix.waitpid [] server_pid);
         (0., 0., 0., 0., 0)
       | Ok _ ->
         let t0 = Unix.gettimeofday () in
         let client_pids =
           List.map
             (fun lat_file ->
               flush stdout;
               flush stderr;
               match Unix.fork () with
               | 0 ->
                 let oc = open_out lat_file in
                 let client = Sclient.create ~addr:sock () in
                 for _ = 1 to per_client do
                   let s = Unix.gettimeofday () in
                   let ok =
                     match Sclient.roundtrip client request with
                     | Ok r when r.Sproto.status = "complete" -> 1
                     | Ok _ | Error _ -> 0
                   in
                   Printf.fprintf oc "%.9f %d\n"
                     (Unix.gettimeofday () -. s)
                     ok
                 done;
                 Sclient.close client;
                 close_out oc;
                 Unix._exit 0
               | pid -> pid)
             lat_files
         in
         List.iter (fun pid -> ignore (Unix.waitpid [] pid)) client_pids;
         let wall = Unix.gettimeofday () -. t0 in
         let lats = ref [] and complete = ref 0 in
         List.iter
           (fun lat_file ->
             let ic = open_in lat_file in
             (try
                while true do
                  Scanf.sscanf (input_line ic) "%f %d" (fun l ok ->
                      lats := l :: !lats;
                      complete := !complete + ok)
                done
              with End_of_file | Scanf.Scan_failure _ -> ());
             close_in ic)
           lat_files;
         let lats = Array.of_list !lats in
         Array.sort compare lats;
         let n = Array.length lats in
         let pct p =
           if n = 0 then 0.
           else
             lats.(min (n - 1)
                     (int_of_float (ceil (p *. float_of_int n /. 100.)) - 1))
         in
         let p50 = pct 50. and p95 = pct 95. and p99 = pct 99. in
         let throughput = float_of_int n_requests /. wall in
         Printf.printf
           "%-12s %4d reqs x %d clients: p50 %.5fs  p95 %.5fs  p99 %.5fs  \
            %6.0f req/s  (%d complete)\n"
           label n_requests n_clients p50 p95 p99 throughput !complete;
         verify
           (Printf.sprintf "every serve-bench request answered complete (%s)"
              label)
           (!complete = n_requests);
         Unix.kill server_pid Sys.sigterm;
         let _, wstatus = Unix.waitpid [] server_pid in
         verify
           (Printf.sprintf "serve (%s) drains to exit 0 on SIGTERM" label)
           (wstatus = Unix.WEXITED 0);
         (p50, p95, p99, throughput, !complete))
  in
  let p50_0, p95_0, p99_0, tp_0, _ = run_config ~label:"workers=0" ~workers:0 in
  let p50_4, p95_4, p99_4, tp_4, _ = run_config ~label:"workers=4" ~workers:4 in
  let speedup = if tp_0 > 0. then tp_4 /. tp_0 else 0. in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "\npool speedup: %.2fx on %d cores\n" speedup cores;
  if cores >= 4 then
    verify "worker pool at least doubles concurrent throughput"
      (speedup >= 2.0)
  else
    Printf.printf
      "(speedup target not enforced: only %d cores available)\n" cores;
  let row ~label ~workers p50 p95 p99 tp =
    Printf.sprintf
      "    {\"config\": %S, \"workers\": %d, \"requests\": %d, \
       \"clients\": %d, \"p50_s\": %.6f, \"p95_s\": %.6f, \"p99_s\": %.6f, \
       \"throughput_rps\": %.1f}"
      label workers n_requests n_clients p50 p95 p99 tp
  in
  let gated = cores >= 4 in
  let note =
    if gated then ""
    else
      Printf.sprintf
        ",\n  \"note\": \"speedup target not enforced: only %d cores \
         available; the pool cannot parallelize\""
        cores
  in
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"serve\",\n  \"description\": \"concurrent \
       request throughput against warm mdqa serve over a Unix socket, \
       inline vs supervised worker pool\",\n  \"cores\": %d,\n  \
       \"gated\": %b%s,\n  \
       \"pool_speedup\": %.4f,\n  \"rows\": [\n%s,\n%s\n  ]\n}\n"
      cores gated note speedup
      (row ~label:"workers=0" ~workers:0 p50_0 p95_0 p99_0 tp_0)
      (row ~label:"workers=4" ~workers:4 p50_4 p95_4 p99_4 tp_4)
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\nBENCH_serve.json written\n"

(* Tracer overhead budget: the C3 chase with a tracer installed (every
   round and rule firing emitting a span) must stay within 2% of the
   tracer-off run of the same binary.  This is a stronger check than
   the one the budget actually promises — "instrumented but off costs
   nothing" — because if even full tracing fits the budget, the off
   mode (one ref read per potential span) certainly does.  Min-of-5
   interleaved samples cancel GC and thermal drift; three attempts
   absorb an unlucky scheduler. *)
let report_overhead () =
  banner "Overhead - tracer on vs off on the C3 chase (budget: <= 2%)";
  let g = Hospital.Gen.scale 160 in
  let m = Hospital.Gen.ontology g in
  let p = Md_ontology.program m in
  let i = Md_ontology.instance m in
  let run () = ignore (Chase.run p i) in
  let tracer = Trace.create () in
  let sample_off () = snd (time_once run) in
  let sample_on () =
    Trace.install tracer;
    Fun.protect
      ~finally:(fun () ->
        Trace.uninstall ();
        Trace.clear tracer)
      (fun () -> snd (time_once run))
  in
  let attempt k =
    (* escalate the sample count on retries: a noisy machine needs more
       draws before the min converges to the true floor *)
    let n = 5 * k in
    let min_off = ref infinity and min_on = ref infinity in
    for _ = 1 to n do
      min_off := Float.min !min_off (sample_off ());
      min_on := Float.min !min_on (sample_on ())
    done;
    let ratio = !min_on /. !min_off in
    Printf.printf "attempt %d: off %.4fs  on %.4fs  ratio %.4f (%d samples)\n"
      k !min_off !min_on ratio n;
    ratio <= 1.02
  in
  let rec attempts k = k <= 4 && (attempt k || attempts (k + 1)) in
  verify "tracer overhead within the 2% budget" (attempts 1)

(* Profiler overhead budget: the C3 assessment with the cost-attribution
   profiler installed (per-rule timing, per-atom selectivity counting,
   GC sampling at round boundaries) must stay within 5% of the
   profiler-off run.  Same min-of-N interleaved discipline as the
   tracer gate; the budget is wider because the profiler does real work
   per body atom visit, not just a ref read. *)
let report_profile_overhead () =
  banner
    "Overhead - profiler on vs off on the C3 assessment (budget: <= 5%)";
  let g = Hospital.Gen.scale 160 in
  let ctx = Hospital.Gen.context g in
  let src = Hospital.Gen.source g in
  let run () = ignore (Context.assess ctx ~source:src) in
  let profiler = Profile.create () in
  let sample_off () = snd (time_once run) in
  let sample_on () =
    Profile.install profiler;
    Fun.protect
      ~finally:(fun () ->
        Profile.uninstall ();
        Profile.clear profiler)
      (fun () -> snd (time_once run))
  in
  let attempt k =
    let n = 5 * k in
    let min_off = ref infinity and min_on = ref infinity in
    for _ = 1 to n do
      min_off := Float.min !min_off (sample_off ());
      min_on := Float.min !min_on (sample_on ())
    done;
    let ratio = !min_on /. !min_off in
    Printf.printf "attempt %d: off %.4fs  on %.4fs  ratio %.4f (%d samples)\n"
      k !min_off !min_on ratio n;
    ratio <= 1.05
  in
  let rec attempts k = k <= 4 && (attempt k || attempts (k + 1)) in
  verify "profiler overhead within the 5% budget" (attempts 1)

let scaling () =
  report_c3 ();
  report_c4 ();
  report_ablation_chase ();
  report_ablation_pruning ();
  report_ablation_goal_directed ();
  report_ablation_core ();
  report_ablation_egd_overhead ();
  report_ablation_incremental ();
  report_store ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure pipeline *)

let micro () =
  banner "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let open Toolkit in
  let paper_ontology = Hospital.ontology () in
  let paper_context = Hospital.context () in
  let paper_source = Hospital.source () in
  let g40 = Hospital.Gen.scale 40 in
  let m40 = Hospital.Gen.ontology g40 in
  let ctx40 = Hospital.Gen.context g40 in
  let src40 = Hospital.Gen.source g40 in
  let up = Hospital.upward_ontology () in
  let pu_query =
    Query.make ~name:"pu" ~head:[ v "U"; v "D" ]
      [ Atom.make "patient_unit" [ v "U"; v "D"; c "Tom Waits" ] ]
  in
  let tests =
    [ Test.make ~name:"t2/quality-version"
        (Staged.stage (fun () ->
             Context.assess paper_context ~source:paper_source));
      Test.make ~name:"t4-t5/ontology-chase"
        (Staged.stage (fun () -> Md_ontology.chase paper_ontology));
      Test.make ~name:"e5/query-via-chase"
        (Staged.stage (fun () ->
             Md_ontology.certain_answers paper_ontology
               Hospital.example5_query));
      Test.make ~name:"e5/query-via-proof"
        (Staged.stage (fun () ->
             Md_ontology.proof_answers paper_ontology Hospital.example5_query));
      Test.make ~name:"e7/rewrite-query"
        (Staged.stage (fun () ->
             Context.rewrite_query paper_context Hospital.doctor_query));
      Test.make ~name:"c1/ws-check"
        (Staged.stage (fun () -> Md_ontology.classes paper_ontology));
      Test.make ~name:"c2/separability"
        (Staged.stage (fun () -> Md_ontology.separability paper_ontology));
      Test.make ~name:"c4/fo-rewrite"
        (Staged.stage (fun () -> Md_ontology.rewrite_answers up pu_query));
      Test.make ~name:"c4/chase-answer"
        (Staged.stage (fun () -> Md_ontology.certain_answers up pu_query));
      Test.make ~name:"c3/chase-scale40"
        (Staged.stage (fun () -> Md_ontology.chase m40));
      Test.make ~name:"c3/assess-scale40"
        (Staged.stage (fun () -> Context.assess ctx40 ~source:src40));
      Test.make ~name:"f1/summarizability"
        (Staged.stage (fun () ->
             Mdqa_multidim.Summarizability.diagnose Hospital.hospital_instance));
      (let telecom_ctx = Mdqa_telecom.Telecom.context () in
       let telecom_src = Mdqa_telecom.Telecom.source () in
       Test.make ~name:"telecom/quality-version"
         (Staged.stage (fun () ->
              Context.assess telecom_ctx ~source:telecom_src)))
    ]
  in
  let grouped = Test.make_grouped ~name:"mdqa" tests in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some [ est ] -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-34s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-34s %16s\n" name pretty)
    rows

(* ------------------------------------------------------------------ *)

let () =
  (* the mode is the first non-flag argument (flags: --emit-metrics) *)
  let mode =
    let rec first i =
      if i >= Array.length Sys.argv then "all"
      else if String.length Sys.argv.(i) > 0 && Sys.argv.(i).[0] = '-' then
        first (i + 1)
      else Sys.argv.(i)
    in
    first 1
  in
  (match mode with
   | "report" -> reports ()
   | "scaling" -> scaling ()
   | "c3" -> report_c3 ()
   | "overhead" -> report_overhead ()
   | "profile-overhead" -> report_profile_overhead ()
   | "store" -> report_store ()
   | "serve" -> report_serve ()
   | "micro" -> micro ()
   | "all" | _ ->
     reports ();
     scaling ();
     micro ());
  banner
    (if !all_pass then "ALL REPRODUCTION CHECKS PASSED"
     else "SOME REPRODUCTION CHECKS FAILED");
  if not !all_pass then exit 1
