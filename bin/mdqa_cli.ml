(* mdqa: command-line front end to the Datalog± engine.

   Programs are written in the surface syntax of {!Mdqa_datalog.Parser}
   (facts, TGDs, EGDs, negative constraints, queries).  Subcommands:

     mdqa chase FILE            run the chase, print the saturated instance
       [--checkpoint STORE]     ... keeping a crash-safe on-disk image
     mdqa resume STORE          continue an interrupted checkpointed chase
     mdqa store verify STORE    integrity-check a checkpoint store
     mdqa store fsck STORE      classify damage; --repair runs the
                                salvage chain (journal prefix, previous
                                generation, --from peer)
     mdqa query FILE [-q Q]     answer queries (chase | proof | rewrite)
     mdqa classify FILE         Datalog± class report and position graph
     mdqa check FILE [--json]   validate: every diagnostic in one pass
     mdqa consistency FILE      constraints only: EGD/NC verdict (chase)
     mdqa context FILE.mdq      the full multidimensional QA pipeline

   Exit codes (all subcommands):
     0  complete result (for check: clean, or hints only)
     2  degraded: a resource budget (steps, nulls, rows, CQs, repair
        branches, --timeout, --max-memory) ran out; the partial result
        is printed and the exhaustion reported on stderr
        (for check: warnings but no errors)
     1  error: validation errors, I/O failure, or an inconsistent
        program

   Every subcommand validates its input before running and reports all
   errors (with file:line:col locations and stable codes) instead of
   stopping at the first.

   Example program file:

     unit_ward(standard, w1).
     unit_ward(standard, w2).
     patient_ward(w1, sep5, tom).
     patient_unit(U, D, P) :- patient_ward(W, D, P), unit_ward(U, W).
     ?q(U) :- patient_unit(U, sep5, tom). *)

open Cmdliner
module Cterm = Cmdliner.Term
open Mdqa_datalog
module R = Mdqa_relational
module Server = Mdqa_server.Server
module Service = Mdqa_server.Service
module Client = Mdqa_server.Client
module Sproto = Mdqa_server.Protocol
module Jsonl = Mdqa_server.Jsonl
module Backoff = Mdqa_server.Backoff
module Fdio = Mdqa_server.Fdio
module Replication = Mdqa_server.Replication
module Metrics = Mdqa_obs.Metrics
module Logger = Mdqa_obs.Logger
module Trace = Mdqa_obs.Trace
module Failpoint = Mdqa_obs.Failpoint

let exit_complete = 0
let exit_error = 1
let exit_degraded = 2

(* Raised after the offending diagnostics have already been printed. *)
exception Fatal_diags

(* Every subcommand funnels its failures through here: parse errors,
   I/O errors and stray library exceptions become exit code 1 with a
   one-line message on stderr — no exception ever escapes to the
   runtime. *)
let run_protected f =
  try f () with
  | Fatal_diags -> exit_error
  | Parser.Error { line; message; _ } ->
    Logger.error ~fields:[ ("line", Logger.Int line) ]
      ("parse error: " ^ message);
    exit_error
  | Mdqa_context.Md_parser.Error { line; message } ->
    Logger.error ~fields:[ ("line", Logger.Int line) ]
      ("parse error: " ^ message);
    exit_error
  | Sys_error e | Failure e ->
    Logger.error e;
    exit_error
  | Invalid_argument e ->
    Logger.error ("invalid input: " ^ e);
    exit_error
  | Unix.Unix_error (e, fn, arg) ->
    Logger.error
      ~fields:
        (("syscall", Logger.Str fn)
        :: (if arg = "" then [] else [ ("arg", Logger.Str arg) ]))
      (Unix.error_message e);
    exit_error

let report_error_diags diags =
  List.iter
    (fun d ->
      if d.Diag.severity = Diag.Error then Format.eprintf "%a@." Diag.pp d)
    diags

(* Validation-first loading: every error in the file is reported (with
   its location and code) before the subcommand gives up. *)
let load path =
  let { Validate.parsed; diags } = Validate.check_file path in
  match parsed with
  | Some p -> p
  | None ->
    report_error_diags diags;
    raise Fatal_diags

(* A located, coded fatal error: the diagnostic prints like any other
   (file:line code message) and the command exits 1 through
   {!run_protected} — no bare [Failure] text without a code. *)
let fatal ?file ?line ~code fmt =
  Printf.ksprintf
    (fun msg ->
      report_error_diags [ Diag.make ?file ?line Diag.Error ~code msg ];
      raise Fatal_diags)
    fmt

(* One stderr format for everything: operational messages go through
   the structured {!Logger}, and the [Logs] library (chase tracing) is
   bridged into it, so `--log-json` turns the whole stream into JSONL.
   User-facing diagnostics (file:line code message) keep their own
   renderer — they are program output, not logs. *)
let setup_logging ?(log_json = false) ?log_level verbose =
  Logger.set_json log_json;
  let lvl =
    match log_level with
    | Some s -> (
      match Logger.level_of_string s with
      | Some l -> l
      | None ->
        fatal ~code:"E024" "unknown log level %S (debug|info|warn|error)" s)
    | None -> if verbose then Logger.Debug else Logger.Info
  in
  Logger.set_level lvl;
  let report src level ~over k msgf =
    let lvl =
      match level with
      | Logs.Debug -> Logger.Debug
      | Logs.Info | Logs.App -> Logger.Info
      | Logs.Warning -> Logger.Warn
      | Logs.Error -> Logger.Error
    in
    msgf @@ fun ?header:_ ?tags:_ fmt ->
    Format.kasprintf
      (fun msg ->
        Logger.log lvl ~fields:[ ("src", Logger.Str (Logs.Src.name src)) ] msg;
        over ();
        k ())
      fmt
  in
  Logs.set_reporter { Logs.report };
  Logs.set_level
    (Some
       (match lvl with
       | Logger.Debug -> Logs.Debug
       | Logger.Info -> Logs.Info
       | Logger.Warn -> Logs.Warning
       | Logger.Error -> Logs.Error))

let report_degraded e =
  Logger.logf Logger.Warn "degraded — %a" Guard.pp_exhaustion e

(* --- common arguments ---------------------------------------------- *)

(* A plain string, not [Arg.file]: missing files then surface as
   [Sys_error] through {!run_protected} — exit 1, like every other
   error — instead of cmdliner's 124. *)
let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Datalog± program file.")

let max_steps_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-steps" ] ~docv:"N" ~doc:"Chase step budget.")

let max_nulls_arg =
  Arg.(
    value & opt int 100_000
    & info [ "max-nulls" ] ~docv:"N" ~doc:"Chase labeled-null budget.")

let timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock deadline in seconds for the whole run.  On expiry \
           the partial result computed so far is printed and the exit \
           code is 2.")

let max_memory_arg =
  Arg.(
    value & opt (some float) None
    & info [ "max-memory" ] ~docv:"MB"
        ~doc:
          "Heap watermark in megabytes.  When the OCaml heap grows past \
           it the run degrades to the partial result (exit code 2).")

let max_checkpoint_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-checkpoint-bytes" ] ~docv:"N"
        ~doc:
          "Budget for checkpoint-store I/O in bytes.  When a durable run \
           (see $(b,--checkpoint)) has written this much it degrades to \
           the partial result (exit code 2); the on-disk image stays \
           consistent and resumable.")

let make_guard ?max_checkpoint_bytes ~max_steps ~max_nulls ~timeout ~max_memory
    () =
  Guard.create ~max_steps ~max_nulls ?timeout ?max_memory_mb:max_memory
    ?max_checkpoint_bytes ()

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Enable debug logging (chase tracing).")

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Stderr log threshold: $(b,debug), $(b,info), $(b,warn) or \
           $(b,error).  Overrides $(b,--verbose).")

let log_json_arg =
  Arg.(
    value & flag
    & info [ "log-json" ]
        ~doc:"Emit stderr log records as JSONL instead of text.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run (parse, validate, chase \
           rounds, rule firings, query evaluation) and write it to \
           $(docv) as Chrome trace-event JSON, loadable by \
           chrome://tracing and Perfetto.")

(* The trace file is written even when the traced run degrades or
   fails: a trace of the failure is the most useful trace of all. *)
let with_tracer trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let tr = Trace.create () in
    Trace.install tr;
    Fun.protect
      ~finally:(fun () ->
        Trace.uninstall ();
        Trace.export_file tr path)
      f

let oblivious_arg =
  Arg.(
    value & flag
    & info [ "oblivious" ]
        ~doc:"Use the oblivious chase instead of the restricted one.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the report as a single JSON object instead of text.")

(* --- chase ----------------------------------------------------------- *)

module Store = Mdqa_store.Store
module Fsck = Mdqa_store.Fsck

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let print_chase_result (r : Chase.result) =
  Format.printf "outcome: %a@." Chase.pp_outcome r.Chase.outcome;
  Format.printf
    "rounds: %d  firings: %d  triggers: %d  nulls: %d  egd merges: %d@.@."
    r.Chase.stats.Chase.rounds r.Chase.stats.Chase.tgd_fires
    r.Chase.stats.Chase.triggers_checked r.Chase.stats.Chase.nulls_created
    r.Chase.stats.Chase.egd_merges;
  List.iter
    (fun rel ->
      if not (R.Relation.is_empty rel) then begin
        R.Table_fmt.print rel;
        print_newline ()
      end)
    (R.Instance.relations r.Chase.instance)

(* A chase that was asked to checkpoint but could not finalize its
   on-disk image has still computed a correct in-memory result; the
   broken durability is its own error. *)
let report_store_write_error store =
  match Store.write_error store with
  | None -> false
  | Some e ->
    Logger.error
      ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
      "checkpoint write failed";
    true

let chase_exit (r : Chase.result) =
  match r.Chase.outcome with
  | Chase.Saturated -> exit_complete
  | Chase.Out_of_budget e ->
    report_degraded e;
    exit_degraded
  | Chase.Failed _ -> exit_error

let run_chase file checkpoint keep_generations trace max_steps max_nulls
    timeout max_memory max_checkpoint_bytes oblivious verbose log_level
    log_json =
  run_protected @@ fun () ->
  setup_logging ~log_json ?log_level verbose;
  with_tracer trace @@ fun () ->
  let { Parser.program; _ } = load file in
  let inst = Program.instance_of_facts program in
  let variant = if oblivious then Chase.Oblivious else Chase.Restricted in
  let guard =
    make_guard ?max_checkpoint_bytes ~max_steps ~max_nulls ~timeout
      ~max_memory ()
  in
  let store =
    Option.map
      (fun path ->
        Store.create ~guard ~keep_generations ~path
          ~program_text:(read_file file) ~variant ())
      checkpoint
  in
  let r =
    Chase.run ~variant ~guard
      ?checkpoint:(Option.map Store.checkpoint store)
      program inst
  in
  print_chase_result r;
  let store_broken =
    match store with Some s -> report_store_write_error s | None -> false
  in
  if store_broken then exit_error else chase_exit r

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"STORE"
        ~doc:
          "Keep a crash-safe image of the chase at $(docv) (snapshot) and \
           $(docv).journal (write-ahead deltas).  An interrupted or \
           degraded run can be continued with $(b,mdqa resume) $(docv).")

let keep_generations_arg =
  Arg.(
    value & opt int 2
    & info [ "keep-generations" ] ~docv:"K"
        ~doc:
          "Keep the last $(docv) committed snapshot images as \
           $(i,STORE).1 .. $(i,STORE).$(docv) (rotated on every \
           compaction, 0 disables).  They are the salvage material for \
           $(b,mdqa store fsck --repair) when the current snapshot is \
           damaged.")

let chase_cmd =
  Cmd.v
    (Cmd.info "chase" ~doc:"Run the chase and print the saturated instance.")
    Cterm.(
      const run_chase $ file_arg $ checkpoint_arg $ keep_generations_arg
      $ trace_arg $ max_steps_arg $ max_nulls_arg $ timeout_arg
      $ max_memory_arg $ max_checkpoint_bytes_arg $ oblivious_arg
      $ verbose_arg $ log_level_arg $ log_json_arg)

(* --- resume: continue a checkpointed chase --------------------------- *)

let store_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STORE"
        ~doc:"Checkpoint store written by $(b,mdqa chase --checkpoint).")

let run_resume path max_steps max_nulls timeout max_memory
    max_checkpoint_bytes verbose log_level log_json =
  run_protected @@ fun () ->
  setup_logging ~log_json ?log_level verbose;
  let guard =
    make_guard ?max_checkpoint_bytes ~max_steps ~max_nulls ~timeout
      ~max_memory ()
  in
  match Store.resume ~guard ~path () with
  | Error e ->
    Logger.logf Logger.Error "%a" Store.pp_load_error e;
    exit_error
  | Ok (r, recovery) ->
    (match recovery.Store.journal_truncation with
     | None -> ()
     | Some t ->
       Logger.logf Logger.Warn
         ~fields:[ ("replayed", Logger.Int recovery.Store.replayed) ]
         "journal truncated (%a); resumed from the valid prefix"
         Mdqa_store.Journal.pp_truncation t);
    print_chase_result r;
    chase_exit r

let resume_cmd =
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue an interrupted checkpointed chase from its store: replay \
          the snapshot plus the valid journal prefix, then chase on to the \
          same fixpoint the uninterrupted run reaches.  The store needs no \
          program file — it carries its own.")
    Cterm.(
      const run_resume $ store_arg $ max_steps_arg $ max_nulls_arg
      $ timeout_arg $ max_memory_arg $ max_checkpoint_bytes_arg
      $ verbose_arg $ log_level_arg $ log_json_arg)

(* --- store: inspection of checkpoint stores -------------------------- *)

let emit_fsck_report json report =
  if json then print_endline (Fsck.to_json report)
  else Fsck.print_text report;
  Fsck.exit_code report

let run_store_verify path json =
  run_protected @@ fun () ->
  emit_fsck_report json (Fsck.check ~path)

let store_verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Integrity-check a checkpoint store without touching it: validate \
          the snapshot's checksums, replay the journal, probe the \
          generation chain, and classify the damage.  Exit 0 when the \
          store is clean, 2 when it is damaged but $(b,mdqa store fsck \
          --repair) can salvage it (W046/W051), 1 when it is unrepairable \
          (E032).")
    Cterm.(const run_store_verify $ store_arg $ json_arg)

let repair_arg =
  Arg.(
    value & flag
    & info [ "repair" ]
        ~doc:
          "Execute the salvage chain instead of only reporting it: fold \
           the valid journal prefix into a fresh snapshot, or rebuild \
           from the newest clean generation, or (with $(b,--from)) \
           re-sync from a live peer.  Damaged originals are preserved \
           under $(i,STORE).d/quarantine/.")

let from_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from" ] ~docv:"ADDR"
        ~doc:
          "A running $(b,mdqa serve) primary (Unix socket path or \
           host:port) to re-sync the store from when no local copy is \
           salvageable — the last stage of the salvage chain.")

let run_store_fsck path repair from json =
  run_protected @@ fun () ->
  if not repair then emit_fsck_report json (Fsck.check ~path)
  else begin
    let resync =
      Option.map
        (fun primary () ->
          (* the replication ship path doubles as the repair source:
             with the damaged files quarantined, the local epoch can't
             match and the peer re-ships the full store *)
          let follower =
            Replication.Follower.create ~primary ~store_path:path
              ~metrics:(Metrics.create ()) ()
          in
          let r =
            match Replication.Follower.initial_sync follower with
            | Ok () -> Ok ()
            | Error d -> Error d.Diag.message
          in
          Replication.Follower.close follower;
          r)
        from
    in
    emit_fsck_report json (Fsck.repair ?resync ~path ())
  end

let store_fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check a checkpoint store and, with $(b,--repair), salvage it: \
          current snapshot + longest clean journal prefix, else the \
          newest clean previous generation + journal replay, else a \
          re-sync from the $(b,--from) peer.  Damaged originals are \
          quarantined (H056), never deleted; a store no stage can save \
          exits 1 with E032 and is left untouched.")
    Cterm.(const run_store_fsck $ store_arg $ repair_arg $ from_arg $ json_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and repair checkpoint stores written by $(b,mdqa \
             chase --checkpoint).")
    [ store_verify_cmd; store_fsck_cmd ]

(* --- query ----------------------------------------------------------- *)

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("chase", `Chase); ("proof", `Proof); ("rewrite", `Rewrite) ])
        `Chase
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:
          "Answering engine: $(b,chase) (materialize then evaluate), \
           $(b,proof) (top-down DeterministicWSQAns), or $(b,rewrite) \
           (FO rewriting, upward-only rule sets).")

let query_arg =
  Arg.(
    value & opt_all string []
    & info [ "query"; "q" ] ~docv:"QUERY"
        ~doc:"Extra query, e.g. 'q(X) :- p(X, Y)'. Repeatable; queries \
              embedded in FILE also run.")

let print_answers ?(partial = false) name answers =
  Printf.printf "%s:" name;
  if answers = [] then
    print_string
      (if partial then " (no answers before budget ran out)"
       else " (no certain answers)")
  else if partial then print_string " (partial)";
  print_newline ();
  List.iter (fun t -> Format.printf "  %a@." R.Tuple.pp t) answers

let goal_directed_arg =
  Arg.(
    value & flag
    & info [ "goal-directed" ]
        ~doc:
          "With the chase engine: restrict the rules to those relevant \
           to the query before chasing.")

(* Remote answering: ship each -q query to a running [mdqa serve] and
   render its reply with the same shape (and exit codes) as local
   evaluation.  Transient failures — the server restarting, overload
   sheds — are retried with full-jitter backoff by {!Client}. *)

let print_remote_answers name partial (r : Sproto.reply) =
  match r.Sproto.answers with
  | None -> Printf.printf "%s: (no answers)\n" name
  | Some tuples ->
    Printf.printf "%s:%s\n" name
      (if tuples = [] then
         if partial then " (no answers before budget ran out)"
         else " (no certain answers)"
       else if partial then " (partial)"
       else "");
    List.iter
      (fun vs -> Printf.printf "  (%s)\n" (String.concat ", " vs))
      tuples

let run_remote_query ~addr ~engine ~attempts ~budget ~timeout ~max_steps
    query_strings =
  if query_strings = [] then fatal ~code:"E003" "no queries (use -q)";
  let policy = Backoff.policy ~max_attempts:attempts ~budget () in
  let client = Client.create ~policy ~addr () in
  let engine_name =
    match engine with
    | `Chase -> "chase"
    | `Proof -> "proof"
    | `Rewrite -> "rewrite"
  in
  let failed = ref false and degraded = ref false in
  List.iteri
    (fun i q ->
      let req =
        Jsonl.Obj
          ([ ("kind", Jsonl.Str "query");
             ("id", Jsonl.Num (float_of_int i));
             ("query", Jsonl.Str q);
             ("engine", Jsonl.Str engine_name);
             ("max_steps", Jsonl.Num (float_of_int max_steps)) ]
          @
          match timeout with
          | Some t -> [ ("timeout", Jsonl.Num t) ]
          | None -> [])
      in
      let name = Printf.sprintf "q%d" i in
      match Client.roundtrip client (Jsonl.to_string req) with
      | Error e ->
        Logger.error ~fields:[ ("query", Logger.Str name) ] e;
        failed := true
      | Ok r -> (
        match r.Sproto.status with
        | "complete" -> print_remote_answers name false r
        | "degraded" ->
          print_remote_answers name true r;
          Logger.warn
            ~fields:[ ("query", Logger.Str name) ]
            ("degraded — "
            ^ Option.value r.Sproto.message
                ~default:(Option.value ~default:"budget" r.Sproto.reason));
          degraded := true
        | _ ->
          Logger.error
            ~fields:
              (("query", Logger.Str name)
              :: (match r.Sproto.code with
                 | Some c -> [ ("code", Logger.Str c) ]
                 | None -> []))
            (Option.value ~default:"error reply" r.Sproto.message);
          failed := true))
    query_strings;
  Client.close client;
  if Client.retries client > 0 then
    Logger.info
      ~fields:[ ("retries", Logger.Int (Client.retries client)) ]
      "transient failures retried";
  if !failed then exit_error
  else if !degraded then exit_degraded
  else exit_complete

let run_query file remote retry_attempts retry_budget engine query_strings
    goal_directed trace max_steps max_nulls timeout max_memory =
  run_protected @@ fun () ->
  with_tracer trace @@ fun () ->
  match remote with
  | Some addr ->
    run_remote_query ~addr ~engine ~attempts:retry_attempts
      ~budget:retry_budget ~timeout ~max_steps query_strings
  | None ->
  let file =
    match file with
    | Some f -> f
    | None -> fatal ~code:"E003" "query needs FILE (or --remote ADDR with -q)"
  in
  let { Parser.program; queries } = load file in
  let extra =
    List.map
      (fun s ->
        try Parser.parse_query s
        with Parser.Error { line; message; _ } ->
          fatal ~file:"<query>" ~line ~code:"E002" "query %S: %s" s message)
      query_strings
  in
  let queries = queries @ extra in
  if queries = [] then
    fatal ~file ~code:"E003" "no queries (use -q or add ?q(..) :- ..)";
  let inst = Program.instance_of_facts program in
  (* One guard governs the whole invocation: the deadline and memory
     watermark are global, so a query list can never outlive --timeout. *)
  let guard = make_guard ~max_steps ~max_nulls ~timeout ~max_memory () in
  let failed = ref false and degraded = ref false in
  let note_degraded e =
    report_degraded e;
    degraded := true
  in
  List.iter
    (fun q ->
      match engine with
      | `Chase -> (
        match Query.certain_answers ~guard ~goal_directed program inst q with
        | Query.Ok answers -> print_answers q.Query.name answers
        | Query.Inconsistent f ->
          Format.printf "%s: inconsistent — %a@." q.Query.name
            Chase.pp_outcome (Chase.Failed f);
          failed := true
        | Query.Degraded { partial; exhaustion; _ } ->
          print_answers ~partial:true q.Query.name partial;
          note_degraded exhaustion)
      | `Proof ->
        let r = Proof.answer program inst q in
        print_answers ~partial:(not r.Proof.complete) q.Query.name
          r.Proof.answers;
        if not r.Proof.complete then begin
          Printf.printf "  (search truncated after %d steps)\n" r.Proof.steps;
          degraded := true
        end
      | `Rewrite -> (
        match Rewrite.answers ~guard program inst q with
        | Guard.Complete answers -> print_answers q.Query.name answers
        | Guard.Degraded (answers, e) ->
          print_answers ~partial:true q.Query.name answers;
          note_degraded e))
    queries;
  if !failed then exit_error
  else if !degraded then exit_degraded
  else exit_complete

let query_file_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"Datalog± program file (omit with $(b,--remote)).")

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"ADDR"
        ~doc:
          "Answer against a running $(b,mdqa serve) instead of evaluating \
           locally: a Unix socket path or host:port.  Connection failures \
           and overload sheds are retried with full-jitter exponential \
           backoff.")

let retry_attempts_arg =
  Arg.(
    value & opt int 6
    & info [ "retry-attempts" ] ~docv:"N"
        ~doc:"With --remote: retries allowed per request (0 disables).")

let retry_budget_arg =
  Arg.(
    value & opt float 10.
    & info [ "retry-budget" ] ~docv:"SEC"
        ~doc:
          "With --remote: cumulative backoff sleep allowed per request \
           across all its retries.")

let query_cmd =
  Cmd.v (Cmd.info "query" ~doc:"Answer conjunctive queries over a program.")
    Cterm.(
      const run_query $ query_file_arg $ remote_arg $ retry_attempts_arg
      $ retry_budget_arg $ engine_arg $ query_arg $ goal_directed_arg
      $ trace_arg $ max_steps_arg $ max_nulls_arg $ timeout_arg
      $ max_memory_arg)

(* --- classify -------------------------------------------------------- *)

let run_classify file =
  run_protected @@ fun () ->
  let { Parser.program; _ } = load file in
  Format.printf "%a@.@." Classes.pp_report (Classes.classify program);
  let g = Position_graph.build program in
  let finite = Position_graph.finite_rank_positions g in
  let infinite = Position_graph.infinite_rank_positions g in
  Format.printf "positions: %d finite rank, %d infinite rank@."
    (List.length finite) (List.length infinite);
  if infinite <> [] then
    Format.printf "infinite-rank: %s@."
      (String.concat ", "
         (List.map (fun (p, i) -> Printf.sprintf "%s[%d]" p i) infinite));
  let affected = Position_graph.affected_positions g in
  Format.printf "affected positions: %s@."
    (if affected = [] then "(none)"
     else
       String.concat ", "
         (List.map (fun (p, i) -> Printf.sprintf "%s[%d]" p i) affected));
  Format.printf "EGD separability (non-affected heads): %a@."
    Separability.pp_verdict (Separability.non_affected_heads program);
  Format.printf "rewritable by unfolding (acyclic predicates): %b@."
    (Rewrite.rewritable program);
  exit_complete

let classify_cmd =
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Report Datalog± class membership and position-graph facts.")
    Cterm.(const run_classify $ file_arg)

(* --- check: static validation, all diagnostics in one pass ----------- *)

let run_diag_check file json =
  run_protected @@ fun () ->
  let diags =
    if Filename.check_suffix file ".mdq" then
      (Mdqa_context.Md_parser.check_file file).Mdqa_context.Md_parser.diags
    else (Validate.check_file file).Validate.diags
  in
  if json then print_endline (Diag.to_json ~file diags)
  else begin
    List.iter (fun d -> Format.printf "%a@." Diag.pp d) diags;
    Format.printf "%a@." Diag.pp_summary diags
  end;
  Diag.exit_code diags

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate a Datalog± program or .mdq context without running it: \
          report every lexical, syntax and semantic diagnostic (stable \
          codes, file:line:col locations) in one pass.  Exit 0 when clean \
          (hints allowed), 2 on warnings, 1 on errors.")
    Cterm.(const run_diag_check $ file_arg $ json_arg)

(* --- consistency: EGD/NC verdict via the chase ----------------------- *)

let run_consistency file max_steps max_nulls timeout max_memory =
  run_protected @@ fun () ->
  let { Parser.program; _ } = load file in
  let inst = Program.instance_of_facts program in
  let guard = make_guard ~max_steps ~max_nulls ~timeout ~max_memory () in
  let r = Chase.run ~guard program inst in
  (match r.Chase.outcome with
   | Chase.Saturated ->
     print_endline "consistent: all EGDs and constraints satisfied"
   | o -> Format.printf "%a@." Chase.pp_outcome o);
  match r.Chase.outcome with
  | Chase.Saturated -> exit_complete
  | Chase.Out_of_budget e ->
    report_degraded e;
    exit_degraded
  | Chase.Failed _ -> exit_error

let consistency_cmd =
  Cmd.v
    (Cmd.info "consistency"
       ~doc:"Check EGDs and negative constraints (via chase).")
    Cterm.(
      const run_consistency $ file_arg $ max_steps_arg $ max_nulls_arg
      $ timeout_arg $ max_memory_arg)

(* --- context: the full MD quality pipeline over .mdq files ----------- *)

let repair_arg =
  Arg.(
    value & flag
    & info [ "repair" ]
        ~doc:
          "If the data violates the denial constraints, discard a minimal \
           set of offending tuples (subset repair) before assessing, as in \
           the paper's Example 1.")

let load_csv_arg =
  Arg.(
    value & opt_all (pair ~sep:'=' string string) []
    & info [ "load" ] ~docv:"REL=FILE.csv"
        ~doc:
          "Replace (or create) a source relation from a CSV file before \
           assessing.  Repeatable.")

let explain_arg =
  Arg.(
    value & opt int 0
    & info [ "explain" ] ~docv:"N"
        ~doc:
          "Print the derivation tree of up to $(docv) tuples of each \
           quality version (why they were deemed up to quality).")

let run_context file do_repair loads explain_n max_steps max_nulls timeout
    max_memory =
  run_protected @@ fun () ->
  let module Context = Mdqa_context.Context in
  let module Repair = Mdqa_context.Repair in
  let module Md_ontology = Mdqa_multidim.Md_ontology in
  let parsed =
    let checked = Mdqa_context.Md_parser.check_file file in
    match checked.Mdqa_context.Md_parser.parsed with
    | Some p -> p
    | None ->
      report_error_diags checked.Mdqa_context.Md_parser.diags;
      raise Fatal_diags
  in
  let { Mdqa_context.Md_parser.ontology; context; source; queries } = parsed in
  (* CSV overrides for source relations *)
  List.iter
    (fun (rel, path) ->
      match R.Csv_io.load_relation_result ~name:rel path with
      | Error errs ->
        report_error_diags
          (List.map
             (fun (e : R.Csv_io.error) ->
               Diag.make ~file:path ~line:e.R.Csv_io.row ~col:e.R.Csv_io.col
                 Diag.Error ~code:"E022" e.R.Csv_io.message)
             errs);
        raise Fatal_diags
      | Ok loaded -> (
        match R.Instance.find source rel with
        | Some existing ->
          if R.Relation.arity existing <> R.Relation.arity loaded then
            fatal ~file:path ~code:"E011"
              "arity %d of %s does not match declared %d"
              (R.Relation.arity loaded) rel (R.Relation.arity existing);
          (* replace contents *)
          R.Relation.iter (fun t -> ignore (R.Relation.remove existing t))
            (R.Relation.copy existing);
          R.Relation.iter (fun t -> ignore (R.Relation.add existing t)) loaded
        | None ->
          fatal ~file ~code:"E013"
            "--load %s: no 'source %s(...)' declaration" rel rel))
    loads;
  (* Static reports. *)
  (match Md_ontology.referential_violations ontology with
   | [] -> print_endline "referential constraints (1): satisfied"
   | viols ->
     List.iter
       (fun v -> Format.printf "referential violation: %a@." Md_ontology.pp_violation v)
       viols);
  Format.printf "Datalog± classes:@.%a@." Classes.pp_report
    (Md_ontology.classes ontology);
  Format.printf "EGD separability: %a@." Separability.pp_verdict
    (Md_ontology.separability ontology);
  Printf.printf "upward-only: %b\n\n" (Md_ontology.is_upward_only ontology);
  let guard = make_guard ~max_steps ~max_nulls ~timeout ~max_memory () in
  (* Assessment: a saturated chase prints the full report; a degraded
     one prints what was computed before the trip (sound
     under-approximations) and exits 2; a failed one exits 1. *)
  let finish (a : Context.assessment) =
    let partial = Context.degradation a <> None in
    let explain_quality (a : Context.assessment) =
      if explain_n > 0 then
        List.iter
          (fun (orig, _) ->
            match Context.quality_version a orig with
            | Some q ->
              let shown = ref 0 in
              R.Relation.iter
                (fun t ->
                  if !shown < explain_n then begin
                    incr shown;
                    match Context.explain a orig t with
                    | Ok tree ->
                      Printf.printf "why is this %s tuple up to quality?\n"
                        orig;
                      Format.printf "%a@." Explain.pp tree
                    | Error e -> print_endline e
                  end)
                q
            | None -> ())
          context.Context.quality_versions
    in
    Format.printf "chase: %a@.@." Chase.pp_outcome a.Context.chase.Chase.outcome;
    match a.Context.chase.Chase.outcome with
    | Chase.Failed _ -> exit_error
    | Chase.Saturated | Chase.Out_of_budget _ ->
      let title orig =
        orig ^ if partial then " quality version (partial)"
               else " quality version"
      in
      List.iter
        (fun (orig, _) ->
          match Context.quality_version ~partial a orig with
          | Some q ->
            R.Table_fmt.print ~title:(title orig) q;
            print_newline ()
          | None -> Printf.printf "no quality version for %s\n" orig)
        context.Context.quality_versions;
      if not partial then explain_quality a;
      Format.printf "%a@.@." Mdqa_context.Assessment.pp_report
        (Mdqa_context.Assessment.report ~partial a);
      List.iter
        (fun q ->
          match Context.clean_answers ~partial a q with
          | Some answers ->
            print_answers ~partial (q.Query.name ^ " (quality)") answers
          | None -> Printf.printf "%s: no answers (inconsistent)\n" q.Query.name)
        queries;
      (match Context.degradation a with
       | Some e ->
         report_degraded e;
         exit_degraded
       | None -> exit_complete)
  in
  if do_repair then
    match Repair.assess_repaired ~guard context ~source with
    | Ok (a, removed) ->
      if removed <> [] then begin
        print_endline "discarded by repair:";
        List.iter
          (fun d -> Format.printf "  %a@." Repair.pp_deletion d)
          removed;
        print_newline ()
      end;
      finish a
    | Error e -> fatal ~file ~code:"E028" "repair failed: %s" e
  else
    finish (Context.assess ~provenance:(explain_n > 0) ~guard context ~source)

let context_cmd =
  Cmd.v
    (Cmd.info "context"
       ~doc:
         "Run a full multidimensional quality-assessment pipeline from an \
          .mdq context file: classes, constraints, chase, quality versions, \
          quality query answers.")
    Cterm.(
      const run_context $ file_arg $ repair_arg $ load_csv_arg $ explain_arg
      $ max_steps_arg $ max_nulls_arg $ timeout_arg $ max_memory_arg)

(* --- serve: the long-running query service --------------------------- *)

let serve_file_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:
          "Datalog± program file to load and chase.  Optional when \
           $(b,--store) names an existing snapshot to warm-start from.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix socket at $(docv) (removed on exit).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP $(docv) (see --host).")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address for --port.")

let serve_store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"STORE"
        ~doc:
          "Crash-safe checkpoint store.  An existing snapshot warm-starts \
           the service; the warm fixpoint is re-snapshotted periodically \
           and on drain, through a circuit breaker that keeps the service \
           answering from memory when the disk misbehaves.")

let max_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission-queue capacity.  Requests beyond it are shed with an \
           immediate degraded:overload reply instead of queuing without \
           bound.")

let serve_read_timeout_arg =
  Arg.(
    value & opt float 10.
    & info [ "read-timeout" ] ~docv:"SEC"
        ~doc:
          "Seconds a client gets to finish sending a request line (and \
           the server to finish writing a reply) before the connection \
           is dropped.")

let request_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-timeout" ] ~docv:"SEC"
        ~doc:
          "Default per-request deadline; a request's own \"timeout\" \
           field takes precedence.  On expiry the request degrades to \
           the partial answer, the server keeps running.")

let request_max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "request-max-steps" ] ~docv:"N"
        ~doc:"Default per-request step budget (proof-engine search).")

let max_request_bytes_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "max-request-bytes" ] ~docv:"N"
        ~doc:"Longest accepted request line; beyond it the connection is \
              answered E025 and closed.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 64
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Re-snapshot the warm fixpoint every $(docv) requests \
              (0 disables periodic checkpoints).")

let drain_grace_arg =
  Arg.(
    value & opt float 5.
    & info [ "drain-grace" ] ~docv:"SEC"
        ~doc:
          "On SIGTERM/SIGINT: seconds to finish queued requests before \
           the rest are answered degraded:drain and the server exits.")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Answer queries from a supervised pool of $(docv) forked \
           workers sharing the warm fixpoint copy-on-write.  A crashed \
           worker costs one E029 reply and a backed-off restart; 0 \
           (the default) answers inline, single-process.")

let watchdog_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "watchdog" ] ~docv:"SEC"
        ~doc:
          "Per-request hang deadline for workers: one exceeding it is \
           SIGKILLed and its client answered degraded (W049).  Only \
           meaningful with --workers.")

let min_ready_arg =
  Arg.(
    value & opt int 1
    & info [ "min-ready" ] ~docv:"N"
        ~doc:
          "Live workers required to accept queries; below it queued \
           queries are refused with H054 instead of waiting on a dead \
           pool.")

let worker_max_requests_arg =
  Arg.(
    value & opt int 10_000
    & info [ "worker-max-requests" ] ~docv:"N"
        ~doc:
          "Recycle a worker after it has answered $(docv) requests \
           (bounds leak accumulation; 0 disables).")

let worker_max_heap_arg =
  Arg.(
    value & opt float 0.
    & info [ "worker-max-heap" ] ~docv:"MB"
        ~doc:"Recycle a worker whose heap exceeds $(docv) MiB (0 disables).")

let replica_of_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replica-of" ] ~docv:"ADDR"
        ~doc:
          "Run as a hot standby of the $(b,mdqa serve) primary at $(docv) \
           (Unix socket path or host:port).  The primary's snapshot and \
           journal are shipped into $(b,--store) (required) before \
           serving starts, then followed live; queries are answered \
           read-only with a W050 stale-read tag.  $(b,mdqa promote), or \
           $(b,--promote-after) consecutive missed heartbeats, turns the \
           standby into a primary.")

let repl_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "repl-interval" ] ~docv:"SEC"
        ~doc:"Standby heartbeat/poll period against the primary.")

let promote_after_arg =
  Arg.(
    value & opt int 5
    & info [ "promote-after" ] ~docv:"N"
        ~doc:
          "Consecutive missed heartbeats after which the standby declares \
           the primary lost and promotes itself (0 never auto-promotes).")

let scrub_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "scrub-interval" ] ~docv:"SEC"
        ~doc:
          "Continuously re-verify the store's on-disk checksums from the \
           event loop, one bounded step every $(docv) seconds.  A \
           finding trips the checkpoint breaker and triggers a one-shot \
           $(b,store fsck --repair); a standby re-syncs from its \
           primary instead.  Progress is exported as \
           $(b,mdqa_store_scrub_bytes_total) / \
           $(b,mdqa_store_scrub_errors_total).")

let run_serve file socket port host store max_queue read_timeout
    request_timeout request_max_steps max_request_bytes checkpoint_every
    keep_generations drain_grace workers watchdog min_ready
    worker_max_requests worker_max_heap_mb scrub_interval replica_of
    repl_interval promote_after max_steps max_nulls max_checkpoint_bytes
    verbose log_level log_json =
  run_protected @@ fun () ->
  setup_logging ~log_json ?log_level verbose;
  (* Deterministic fault injection for the chaos harness: scripted
     crash/hang/exit at named sites, armed only via the environment. *)
  (match Failpoint.arm_env () with
  | Ok () -> ()
  | Error msg -> fatal ~code:"E024" "MDQA_FAILPOINTS: %s" msg);
  (* A modest always-on tracer backs the protocol's "spans" request:
     the last few thousand spans of live behaviour, introspectable
     without restarting the server. *)
  Trace.install (Trace.create ~capacity:4096 ());
  (* Likewise the cost-attribution profiler backs the "profile"
     request: per-rule/per-atom chase statistics accumulated across
     every request the server evaluates. *)
  Mdqa_obs.Profile.install (Mdqa_obs.Profile.create ());
  let addr =
    match (socket, port) with
    | Some _, Some _ ->
      fatal ~code:"E024" "--socket and --port are mutually exclusive"
    | Some path, None -> Server.Unix_path path
    | None, Some p -> Server.Tcp (host, p)
    | None, None -> fatal ~code:"E024" "serve needs --socket PATH or --port N"
  in
  let guard = Guard.create ~max_steps ~max_nulls ?max_checkpoint_bytes () in
  let cfg svc =
    { Server.addr;
      max_queue;
      max_clients = 128;
      read_timeout;
      write_timeout = read_timeout;
      max_request_bytes;
      request_timeout;
      request_max_steps;
      drain_grace;
      workers;
      watchdog;
      min_ready;
      worker_max_requests;
      worker_max_heap_mb;
      scrub_interval;
      scrub_budget = 65536 }
    |> fun c ->
    Failpoint.attach_metrics (Service.metrics svc);
    c
  in
  match replica_of with
  | Some primary -> (
    (* Standby: sync the primary's store down first, then warm-start
       from the shipped bytes and follow.  Workers are forbidden — a
       standby answers read-only and inline; forked children would
       hold stale copies of a fixpoint that changes on every applied
       frame. *)
    if workers > 0 then
      fatal ~code:"E024" "--workers cannot be combined with --replica-of";
    if file <> None then
      fatal ~code:"E024"
        "--replica-of takes its program from the shipped store; drop the \
         FILE argument";
    let store_path =
      match store with
      | Some s -> s
      | None ->
        fatal ~code:"E024"
          "--replica-of needs --store PATH for the local replica files"
    in
    let metrics = Metrics.create () in
    let follower =
      Replication.Follower.create ~interval:repl_interval
        ~promote_after ~primary ~store_path ~metrics ()
    in
    (match Replication.Follower.initial_sync follower with
    | Error d ->
      report_error_diags [ d ];
      raise Fatal_diags
    | Ok () -> ());
    match
      Service.load_replica ~guard ~metrics ~checkpoint_every
        ~keep_generations ~store:store_path ()
    with
    | Error diags ->
      report_error_diags diags;
      raise Fatal_diags
    | Ok svc -> Server.run ~follower (cfg svc) svc)
  | None -> (
    match
      Service.load ~guard ?store ~checkpoint_every ~keep_generations
        ?program_file:file ()
    with
    | Error diags ->
      report_error_diags diags;
      raise Fatal_diags
    | Ok svc -> Server.run (cfg svc) svc)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve quality queries from a warm chase fixpoint over a \
          line-delimited JSON protocol (Unix socket or TCP).  Admission \
          control sheds overload, each request runs under its own guard \
          fork, \
          a crashed request costs one error reply, checkpoint I/O sits \
          behind a circuit breaker, and SIGTERM drains gracefully \
          (exit 0, or 2 when anything was degraded on the way out).  \
          With $(b,--replica-of) the server runs as a hot standby: \
          snapshot and journal shipped from the primary, followed live, \
          promoted on $(b,mdqa promote) or primary loss.")
    Cterm.(
      const run_serve $ serve_file_arg $ socket_arg $ port_arg $ host_arg
      $ serve_store_arg $ max_queue_arg $ serve_read_timeout_arg
      $ request_timeout_arg $ request_max_steps_arg $ max_request_bytes_arg
      $ checkpoint_every_arg $ keep_generations_arg $ drain_grace_arg
      $ workers_arg $ watchdog_arg $ min_ready_arg $ worker_max_requests_arg
      $ worker_max_heap_arg $ scrub_interval_arg $ replica_of_arg
      $ repl_interval_arg $ promote_after_arg $ max_steps_arg $ max_nulls_arg
      $ max_checkpoint_bytes_arg $ verbose_arg $ log_level_arg $ log_json_arg)

(* --- remote: raw line client (the chaos harness's scalpel) ----------- *)

let connect_endpoint addr =
  if String.contains addr '/' then (
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX addr);
    fd)
  else
    match String.rindex_opt addr ':' with
    | Some i when i > 0 && i < String.length addr - 1
                  && int_of_string_opt
                       (String.sub addr (i + 1) (String.length addr - i - 1))
                     <> None ->
      let host = String.sub addr 0 i in
      let port =
        int_of_string (String.sub addr (i + 1) (String.length addr - i - 1))
      in
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd
    | _ ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX addr);
      fd

let read_reply_line fd buf =
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      let rest = String.length s - i - 1 in
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) rest;
      Some line
    | None -> (
      match Unix.read fd chunk 0 4096 with
      | 0 -> None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> None)
  in
  go ()

(* Burst mode: ship every stdin line in one write, then collect one
   reply per request.  A synchronous client can never overflow the
   server's admission queue; a burst can — which is exactly what the
   chaos harness needs to observe load shedding. *)
let run_remote_burst addr =
  let requests = ref [] in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then requests := line :: !requests
     done
   with End_of_file -> ());
  let requests = List.rev !requests in
  let fd = connect_endpoint addr in
  let buf = Buffer.create 256 in
  let rc = ref exit_complete in
  (match
     Fdio.write_all fd (String.concat "\n" requests ^ "\n")
   with
   | Error e ->
     Format.eprintf "mdqa: write: %s@." e;
     rc := exit_error
   | Ok () ->
     List.iter
       (fun _ ->
         if !rc = exit_complete then
           match read_reply_line fd buf with
           | Some reply -> print_endline reply
           | None ->
             Format.eprintf "mdqa: connection closed by server@.";
             rc := exit_error)
       requests);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  !rc

let run_remote_raw addr slow use_retry burst =
  run_protected @@ fun () ->
  if burst then run_remote_burst addr
  else if use_retry then (
    let client = Client.create ~addr () in
    let rc = ref exit_complete in
    (try
       while true do
         let line = input_line stdin in
         if String.trim line <> "" then
           match Client.roundtrip client line with
           | Ok r -> print_endline (Jsonl.to_string r.Sproto.json)
           | Error e ->
             Format.eprintf "mdqa: %s@." e;
             rc := exit_error
       done
     with End_of_file -> ());
    Client.close client;
    !rc)
  else (
    let fd = connect_endpoint addr in
    let buf = Buffer.create 256 in
    let rc = ref exit_complete in
    (try
       while true do
         let line = input_line stdin in
         let data = line ^ "\n" in
         (if slow > 0. then
            String.iter
              (fun ch ->
                (match Fdio.write_all fd (String.make 1 ch) with
                 | Ok () -> ()
                 | Error e -> failwith ("write: " ^ e));
                Fdio.sleepf slow)
              data
          else
            match Fdio.write_all fd data with
            | Ok () -> ()
            | Error e -> failwith ("write: " ^ e));
         match read_reply_line fd buf with
         | Some reply -> print_endline reply
         | None ->
           Format.eprintf "mdqa: connection closed by server@.";
           raise Exit
       done
     with
    | End_of_file -> ()
    | Exit -> rc := exit_error);
    (try Unix.close fd with Unix.Unix_error _ -> ());
    !rc)

let remote_addr_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ADDR"
        ~doc:
          "Unix socket path or host:port of mdqa serve.  A comma-separated \
           list (e.g. $(b,primary:7401,standby:7401)) enables failover: \
           when a connect is refused the client rotates to the next \
           endpoint on the retry path ($(b,--retry)).")

let slow_arg =
  Arg.(
    value & opt float 0.
    & info [ "slow" ] ~docv:"SEC"
        ~doc:
          "Dribble each request one byte every $(docv) seconds \
           (slow-loris injection for the chaos harness).")

let raw_retry_arg =
  Arg.(
    value & flag
    & info [ "retry" ]
        ~doc:"Retry transient failures with full-jitter backoff instead \
              of failing on the first.")

let burst_arg =
  Arg.(
    value & flag
    & info [ "burst" ]
        ~doc:
          "Send every stdin line in one write before reading any reply \
           (overload injection), instead of one request-reply at a time.")

let remote_cmd =
  Cmd.v
    (Cmd.info "remote"
       ~doc:
         "Raw protocol client: read request lines from stdin, send them to \
          a running $(b,mdqa serve), print one reply line each to stdout.  \
          Exit 1 if the server drops the connection.")
    Cterm.(
      const run_remote_raw $ remote_addr_arg $ slow_arg $ raw_retry_arg
      $ burst_arg)

(* --- metrics: scrape a running server -------------------------------- *)

let metrics_remote_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "remote" ] ~docv:"ADDR"
        ~doc:"Unix socket path or host:port of a running $(b,mdqa serve).")

let spans_flag_arg =
  Arg.(
    value & flag
    & info [ "spans" ]
        ~doc:
          "Fetch the server's buffered trace spans (JSON list) instead \
           of the metrics exposition.")

let run_metrics addr spans attempts budget =
  run_protected @@ fun () ->
  let policy = Backoff.policy ~max_attempts:attempts ~budget () in
  let client = Client.create ~policy ~addr () in
  let kind = if spans then "spans" else "metrics" in
  let req = Jsonl.to_string (Jsonl.Obj [ ("kind", Jsonl.Str kind) ]) in
  let rc =
    match Client.roundtrip client req with
    | Error e ->
      Logger.error e;
      exit_error
    | Ok r ->
      if spans then (
        match Jsonl.member "spans" r.Sproto.json with
        | Some v ->
          print_endline (Jsonl.to_string v);
          exit_complete
        | None ->
          Logger.error "reply carries no \"spans\" field";
          exit_error)
      else (
        match
          Option.bind (Jsonl.member "exposition" r.Sproto.json) Jsonl.to_str
        with
        | Some text ->
          print_string text;
          exit_complete
        | None ->
          Logger.error "reply carries no \"exposition\" field";
          exit_error)
  in
  Client.close client;
  rc

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Scrape a running $(b,mdqa serve): print its metrics registry \
          as a Prometheus text exposition (request latency histogram, \
          admission queue depth, shed/crash counters, breaker state, \
          chase and store counters), or with $(b,--spans) the tracer's \
          buffered spans as JSON.")
    Cterm.(
      const run_metrics $ metrics_remote_arg $ spans_flag_arg
      $ retry_attempts_arg $ retry_budget_arg)

(* --- promote: turn a standby into a primary -------------------------- *)

let promote_remote_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "remote" ] ~docv:"ADDR"
        ~doc:"Unix socket path or host:port of the standby to promote.")

let run_promote addr attempts budget =
  run_protected @@ fun () ->
  let policy = Backoff.policy ~max_attempts:attempts ~budget () in
  let client = Client.create ~policy ~addr () in
  let req = Jsonl.to_string (Jsonl.Obj [ ("kind", Jsonl.Str "promote") ]) in
  let rc =
    match Client.roundtrip client req with
    | Error e ->
      Logger.error e;
      exit_error
    | Ok r ->
      print_endline (Jsonl.to_string r.Sproto.json);
      if r.Sproto.status = "complete" then exit_complete else exit_error
  in
  Client.close client;
  rc

let promote_cmd =
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Promote a running $(b,mdqa serve) standby to primary: it stops \
          following, takes ownership of its store (periodic checkpoints \
          resume, one forced immediately) and starts answering without \
          the stale-read tag.  Idempotent: promoting a primary reports \
          promoted:false and exits 0.")
    Cterm.(
      const run_promote $ promote_remote_arg $ retry_attempts_arg
      $ retry_budget_arg)

(* --- trace: validate exported trace files ---------------------------- *)

let require_arg =
  Arg.(
    value & opt_all string []
    & info [ "require" ] ~docv:"NAME"
        ~doc:
          "Fail unless an event named $(docv) is present in the trace.  \
           Repeatable.")

(* The checker accepts exactly what chrome://tracing accepts: a
   traceEvents array of objects with string name/ph and numeric
   ts/pid/tid, complete events ("X") carrying a non-negative dur. *)
let run_trace_verify file requires =
  run_protected @@ fun () ->
  let text = read_file file in
  match Jsonl.parse text with
  | Error e -> fatal ~file ~code:"E024" "invalid JSON: %s" e
  | Ok json ->
    let events =
      match Option.bind (Jsonl.member "traceEvents" json) Jsonl.to_list with
      | Some evs -> evs
      | None -> fatal ~file ~code:"E024" "no \"traceEvents\" array"
    in
    let bad = ref 0 in
    let names = Hashtbl.create 64 in
    List.iteri
      (fun i ev ->
        let str k = Option.bind (Jsonl.member k ev) Jsonl.to_str in
        let num k = Option.bind (Jsonl.member k ev) Jsonl.to_num in
        let problem fmt =
          Printf.ksprintf
            (fun m ->
              incr bad;
              Logger.error ~fields:[ ("event", Logger.Int i) ] m)
            fmt
        in
        (match str "name" with
         | Some n -> Hashtbl.replace names n ()
         | None -> problem "missing string \"name\"");
        (match str "ph" with
         | Some "X" -> (
           match num "dur" with
           | Some d when d >= 0. -> ()
           | Some _ -> problem "negative \"dur\""
           | None -> problem "complete event without numeric \"dur\"")
         | Some "i" -> ()
         | Some ph -> problem "unexpected phase %S" ph
         | None -> problem "missing string \"ph\"");
        if num "ts" = None then problem "missing numeric \"ts\"";
        if num "pid" = None then problem "missing numeric \"pid\"";
        if num "tid" = None then problem "missing numeric \"tid\"")
      events;
    let missing =
      List.filter (fun r -> not (Hashtbl.mem names r)) requires
    in
    List.iter
      (fun r ->
        Logger.error ~fields:[ ("name", Logger.Str r) ]
          "required event name absent from trace")
      missing;
    if !bad > 0 || missing <> [] then
      fatal ~file ~code:"E024"
        "trace verification failed: %d malformed events, %d required \
         names missing"
        !bad (List.length missing)
    else begin
      Printf.printf "trace OK: %d events, %d distinct names\n"
        (List.length events) (Hashtbl.length names);
      exit_complete
    end

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"Trace file written by $(b,--trace) or the spans request.")

let trace_verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Validate a trace file against the Chrome trace-event shape \
          (string name/ph, numeric ts/pid/tid, non-negative dur on \
          complete events).  Exit 0 when well formed and every \
          $(b,--require)d event name is present; 1 otherwise.")
    Cterm.(const run_trace_verify $ trace_file_arg $ require_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Inspect span traces written by $(b,--trace).")
    [ trace_verify_cmd ]

(* --- profile: cost attribution for the engine ------------------------ *)

module Profile = Mdqa_obs.Profile
module Stats = Mdqa_store.Stats

let top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"N"
        ~doc:"Rows shown in the hot-rule and hot-atom tables.")

let stats_store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ] ~docv:"STORE"
        ~doc:
          "Merge this run's profile into the CRC-checked statistics \
           sidecar $(docv).stats (created when absent), so selectivities \
           accumulate across runs next to the checkpoint store.")

let take n l = List.filteri (fun i _ -> i < n) l

(* Human report: phases first (the totals everything else attributes
   into), then the hot tables, then the EXPLAIN-style per-rule plans. *)
let print_profile_report ~top snap (tgds : Tgd.t list) =
  let pf = Printf.printf in
  if snap.Profile.phases <> [] then begin
    pf "phases:\n";
    List.iter
      (fun (name, p) ->
        pf "  %-12s calls=%-4d time=%.6fs\n" name p.Profile.calls
          p.Profile.phase_seconds)
      snap.Profile.phases;
    print_newline ()
  end;
  let hot_rules =
    List.sort
      (fun (_, a) (_, b) ->
        compare (b.Profile.rule_seconds, b.Profile.triggers)
          (a.Profile.rule_seconds, a.Profile.triggers))
      snap.Profile.rules
  in
  pf "hot rules (top %d of %d, by attributed time):\n" top
    (List.length hot_rules);
  pf "  %-32s %8s %10s %10s %12s\n" "rule" "fires" "triggers" "matches"
    "seconds";
  List.iter
    (fun (name, r) ->
      pf "  %-32s %8d %10d %10d %12.6f\n" name r.Profile.fires
        r.Profile.triggers r.Profile.matches r.Profile.rule_seconds)
    (take top hot_rules);
  print_newline ();
  let hot_atoms =
    List.sort
      (fun (_, (a : Profile.atom_stat)) (_, b) ->
        compare (b.Profile.scanned, b.Profile.matched)
          (a.Profile.scanned, a.Profile.matched))
      snap.Profile.atoms
  in
  pf "hot atoms (top %d of %d, by tuples scanned):\n" top
    (List.length hot_atoms);
  pf "  %-40s %10s %10s %12s\n" "rule[atom] predicate" "scanned" "matched"
    "selectivity";
  List.iter
    (fun ((scope, idx, pred), a) ->
      pf "  %-40s %10d %10d %12.3f\n"
        (Printf.sprintf "%s[%d] %s" scope idx pred)
        a.Profile.scanned a.Profile.matched (Profile.selectivity a))
    (take top hot_atoms);
  print_newline ();
  if snap.Profile.queries <> [] then begin
    pf "queries:\n";
    List.iter
      (fun (name, q) ->
        pf "  %-32s evals=%-6d time=%.6fs\n" name q.Profile.evals
          q.Profile.query_seconds)
      snap.Profile.queries;
    print_newline ()
  end;
  if snap.Profile.rounds <> [] then begin
    pf "rounds:\n";
    List.iter
      (fun (n, r) ->
        pf
          "  round %-3d time=%.6fs  gc: minor=%d major=%d  heap=%d words\n"
          n r.Profile.round_seconds r.Profile.minor_collections
          r.Profile.major_collections r.Profile.heap_words)
      snap.Profile.rounds;
    print_newline ()
  end;
  if tgds <> [] then begin
    pf "plan (per-rule, body atoms in source order):\n";
    Format.printf "%a@." Explain.pp_cost
      (take top (Explain.cost snap tgds))
  end

let profile_finish ~json ~top ~stats snap tgds exit_code =
  (match stats with
  | Some store -> Stats.record ~store snap
  | None -> ());
  if json then print_endline (Profile.to_json snap)
  else print_profile_report ~top snap tgds;
  exit_code

let with_profiler f =
  let p = Profile.create () in
  Profile.install p;
  Fun.protect ~finally:Profile.uninstall (fun () -> f p)

let run_profile_chase file json top stats oblivious max_steps max_nulls
    timeout max_memory =
  run_protected @@ fun () ->
  let { Parser.program; _ } = load file in
  let inst = Program.instance_of_facts program in
  let variant = if oblivious then Chase.Oblivious else Chase.Restricted in
  let guard = make_guard ~max_steps ~max_nulls ~timeout ~max_memory () in
  with_profiler @@ fun p ->
  let r = Chase.run ~variant ~guard program inst in
  (match r.Chase.outcome with
  | Chase.Out_of_budget e -> report_degraded e
  | _ -> ());
  profile_finish ~json ~top ~stats (Profile.snapshot p)
    program.Program.tgds (chase_exit r)

(* `profile assess` profiles the assessment workload: the full .mdq
   pipeline (chase + quality-query evaluation), or for a plain .dl
   program the chase plus its embedded queries — so per-CQ timings are
   populated either way. *)
let run_profile_assess file json top stats max_steps max_nulls timeout
    max_memory =
  run_protected @@ fun () ->
  let guard = make_guard ~max_steps ~max_nulls ~timeout ~max_memory () in
  with_profiler @@ fun p ->
  if Filename.check_suffix file ".mdq" then begin
    let module Context = Mdqa_context.Context in
    let parsed =
      let checked = Mdqa_context.Md_parser.check_file file in
      match checked.Mdqa_context.Md_parser.parsed with
      | Some parsed -> parsed
      | None ->
        report_error_diags checked.Mdqa_context.Md_parser.diags;
        raise Fatal_diags
    in
    let { Mdqa_context.Md_parser.context; source; queries; _ } = parsed in
    let a = Context.assess ~guard context ~source in
    let partial = Context.degradation a <> None in
    List.iter
      (fun q -> ignore (Context.clean_answers ~partial a q))
      queries;
    (match Context.degradation a with
    | Some e -> report_degraded e
    | None -> ());
    let code =
      match a.Context.chase.Chase.outcome with
      | Chase.Failed _ -> exit_error
      | Chase.Out_of_budget _ -> exit_degraded
      | Chase.Saturated -> exit_complete
    in
    profile_finish ~json ~top ~stats (Profile.snapshot p)
      (Context.program context).Program.tgds code
  end
  else begin
    let { Parser.program; queries } = load file in
    let inst = Program.instance_of_facts program in
    let r =
      Profile.with_phase "assess" @@ fun () ->
      let r = Chase.run ~guard program inst in
      (match r.Chase.outcome with
      | Chase.Failed _ -> ()
      | _ ->
        List.iter
          (fun q -> ignore (Query.certain ~guard r.Chase.instance q))
          queries);
      r
    in
    (match r.Chase.outcome with
    | Chase.Out_of_budget e -> report_degraded e
    | _ -> ());
    profile_finish ~json ~top ~stats (Profile.snapshot p)
      program.Program.tgds (chase_exit r)
  end

let profile_chase_cmd =
  Cmd.v
    (Cmd.info "chase"
       ~doc:
         "Chase a program under the cost-attribution profiler and report \
          per-rule fire/trigger/match counts and time, per-atom join \
          selectivities, per-round wall time and GC deltas.")
    Cterm.(
      const run_profile_chase $ file_arg $ json_arg $ top_arg
      $ stats_store_arg $ oblivious_arg $ max_steps_arg $ max_nulls_arg
      $ timeout_arg $ max_memory_arg)

let profile_assess_cmd =
  Cmd.v
    (Cmd.info "assess"
       ~doc:
         "Profile a quality assessment: for an .mdq context the full \
          pipeline (chase plus quality queries), for a Datalog± file the \
          chase plus its embedded queries.  Reports hot rules, hot atoms, \
          per-query timings and an EXPLAIN-style per-rule plan view.")
    Cterm.(
      const run_profile_assess $ file_arg $ json_arg $ top_arg
      $ stats_store_arg $ max_steps_arg $ max_nulls_arg $ timeout_arg
      $ max_memory_arg)

let profile_cmd =
  Cmd.group
    (Cmd.info "profile"
       ~doc:
         "Cost-attribution profiling: which rule, which body atom, which \
          query the engine spends its time on.  Off by default elsewhere; \
          these subcommands install the profiler for one run.  With \
          $(b,--stats STORE) the profile accumulates into the \
          $(i,STORE).stats sidecar for statistics-driven planning.")
    [ profile_chase_cmd; profile_assess_cmd ]

let main_cmd =
  Cmd.group
    (Cmd.info "mdqa" ~version:"1.0.0"
       ~doc:
         "Multidimensional ontological contexts for data quality \
          assessment — Datalog± engine CLI.")
    [ chase_cmd; resume_cmd; store_cmd; query_cmd; classify_cmd; check_cmd;
      consistency_cmd; context_cmd; serve_cmd; remote_cmd; metrics_cmd;
      promote_cmd; trace_cmd; profile_cmd ]

let () = exit (Cmd.eval' main_cmd)
