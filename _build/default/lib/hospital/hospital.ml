open Mdqa_multidim
open Mdqa_datalog
module R = Mdqa_relational

let v = Term.var
let c s = Term.Const (R.Value.sym s)

let sym = R.Value.sym

let tuple_syms l = R.Tuple.of_list (List.map sym l)

let relation_of schema rows = R.Relation.of_tuples schema rows

(* ------------------------------------------------------------------ *)
(* Dimensions (Fig. 1) *)

let hospital_dim =
  Dim_schema.linear ~name:"Hospital" [ "Ward"; "Unit"; "Institution" ]

let time_dim = Dim_schema.linear ~name:"Time" [ "Time"; "Day"; "Month"; "Year" ]

(* The paper's Thermometer(Ward, Thermometertype; Nurse) lists the type
   before the ";": it is a categorical attribute, so thermometer brands
   form a (one-category) dimension of their own.  This is what makes
   EGD (6) equate only categorical variables — the paper's separability
   criterion. *)
let device_dim = Dim_schema.linear ~name:"Device" [ "Thermometertype" ]

let instants =
  [ "Sep/5-12:10"; "Sep/6-11:50"; "Sep/7-12:15"; "Sep/9-12:00";
    "Sep/6-11:05"; "Sep/5-12:05" ]

let day_of_instant t =
  (* "Sep/5-12:10" -> "Sep/5" *)
  match String.index_opt t '-' with
  | Some i -> String.sub t 0 i
  | None -> t

let days = [ "Sep/5"; "Sep/6"; "Sep/7"; "Sep/9"; "Oct/5" ]

let month_of_day d =
  if String.length d >= 3 && String.sub d 0 3 = "Oct" then "Oct/2005"
  else "Sep/2005"

let hospital_instance =
  Dim_instance.make hospital_dim
    ~members:
      [ ("Ward", [ "W1"; "W2"; "W3"; "W4" ]);
        ("Unit", [ "Standard"; "Intensive"; "Terminal" ]);
        ("Institution", [ "H1"; "H2" ]) ]
    ~links:
      [ ("W1", "Standard"); ("W2", "Standard"); ("W3", "Intensive");
        ("W4", "Terminal"); ("Standard", "H1"); ("Intensive", "H1");
        ("Terminal", "H2") ]

let device_instance =
  Dim_instance.make device_dim
    ~members:[ ("Thermometertype", [ "B1"; "B2" ]) ]
    ~links:[]

let time_instance =
  Dim_instance.make time_dim
    ~members:
      [ ("Time", instants); ("Day", days);
        ("Month", [ "Aug/2005"; "Sep/2005"; "Oct/2005" ]);
        ("Year", [ "2005" ]) ]
    ~links:
      (List.map (fun t -> (t, day_of_instant t)) instants
      @ List.map (fun d -> (d, month_of_day d)) days
      @ [ ("Aug/2005", "2005"); ("Sep/2005", "2005"); ("Oct/2005", "2005") ])

(* ------------------------------------------------------------------ *)
(* Categorical relation schemas (SM's R) *)

let cat name ~dimension ~category = R.Attribute.categorical name ~dimension ~category
let plain = R.Attribute.plain

let patient_ward_schema =
  R.Rel_schema.make "patient_ward"
    [ cat "ward" ~dimension:"Hospital" ~category:"Ward";
      cat "day" ~dimension:"Time" ~category:"Day";
      plain "patient" ]

let patient_unit_schema =
  R.Rel_schema.make "patient_unit"
    [ cat "unit" ~dimension:"Hospital" ~category:"Unit";
      cat "day" ~dimension:"Time" ~category:"Day";
      plain "patient" ]

let working_schedules_schema =
  R.Rel_schema.make "working_schedules"
    [ cat "unit" ~dimension:"Hospital" ~category:"Unit";
      cat "day" ~dimension:"Time" ~category:"Day";
      plain "nurse"; plain "type" ]

let shifts_schema =
  R.Rel_schema.make "shifts"
    [ cat "ward" ~dimension:"Hospital" ~category:"Ward";
      cat "day" ~dimension:"Time" ~category:"Day";
      plain "nurse"; plain "shift" ]

let discharge_patients_schema =
  R.Rel_schema.make "discharge_patients"
    [ cat "institution" ~dimension:"Hospital" ~category:"Institution";
      cat "day" ~dimension:"Time" ~category:"Day";
      plain "patient" ]

let thermometer_schema =
  R.Rel_schema.make "thermometer"
    [ cat "ward" ~dimension:"Hospital" ~category:"Ward";
      cat "thermtype" ~dimension:"Device" ~category:"Thermometertype";
      plain "nurse" ]

let md_schema =
  Md_schema.make
    ~dimensions:[ hospital_dim; time_dim; device_dim ]
    ~relations:
      [ patient_ward_schema; patient_unit_schema; working_schedules_schema;
        shifts_schema; discharge_patients_schema; thermometer_schema ]

(* ------------------------------------------------------------------ *)
(* Data (Tables I–V) *)

let measurements_schema =
  R.Rel_schema.of_names "measurements" [ "time"; "patient"; "value" ]

let measurement t p value =
  R.Tuple.of_list [ sym t; sym p; R.Value.real value ]

(* Table I *)
let measurements =
  relation_of measurements_schema
    [ measurement "Sep/5-12:10" "Tom Waits" 38.2;
      measurement "Sep/6-11:50" "Tom Waits" 37.1;
      measurement "Sep/7-12:15" "Tom Waits" 37.7;
      measurement "Sep/9-12:00" "Tom Waits" 37.0;
      measurement "Sep/6-11:05" "Lou Reed" 37.5;
      measurement "Sep/5-12:05" "Lou Reed" 38.0 ]

(* Table II: the expected quality version *)
let expected_measurements_q =
  relation_of
    (R.Rel_schema.of_names "measurements_q" [ "time"; "patient"; "value" ])
    [ measurement "Sep/5-12:10" "Tom Waits" 38.2;
      measurement "Sep/6-11:50" "Tom Waits" 37.1 ]

let patient_ward_rows =
  [ [ "W1"; "Sep/5"; "Tom Waits" ];
    [ "W2"; "Sep/6"; "Tom Waits" ];
    [ "W4"; "Sep/9"; "Tom Waits" ];
    [ "W4"; "Sep/5"; "Lou Reed" ];
    [ "W4"; "Sep/6"; "Lou Reed" ] ]

let patient_ward =
  relation_of patient_ward_schema (List.map tuple_syms patient_ward_rows)

let patient_ward_raw =
  relation_of patient_ward_schema
    (List.map tuple_syms
       (patient_ward_rows @ [ [ "W3"; "Sep/7"; "Tom Waits" ] ]))

(* Table III *)
let working_schedules =
  relation_of working_schedules_schema
    (List.map tuple_syms
       [ [ "Intensive"; "Sep/5"; "Cathy"; "cert." ];
         [ "Standard"; "Sep/5"; "Helen"; "cert." ];
         [ "Standard"; "Sep/6"; "Helen"; "cert." ];
         [ "Terminal"; "Sep/5"; "Susan"; "non-c." ];
         [ "Standard"; "Sep/9"; "Mark"; "non-c." ] ])

(* Table IV *)
let shifts =
  relation_of shifts_schema
    (List.map tuple_syms
       [ [ "W4"; "Sep/5"; "Cathy"; "night" ];
         [ "W1"; "Sep/6"; "Helen"; "morning" ];
         [ "W4"; "Sep/5"; "Susan"; "evening" ] ])

(* Table V *)
let discharge_patients =
  relation_of discharge_patients_schema
    (List.map tuple_syms
       [ [ "H1"; "Sep/9"; "Tom Waits" ];
         [ "H1"; "Sep/6"; "Lou Reed" ];
         [ "H2"; "Oct/5"; "Elvis Costello" ] ])

let thermometer =
  relation_of thermometer_schema
    (List.map tuple_syms
       [ [ "W1"; "B1"; "Helen" ];
         [ "W2"; "B1"; "Cathy" ];
         [ "W4"; "B2"; "Susan" ] ])

(* ------------------------------------------------------------------ *)
(* Rules and constraints (ΣM) *)

let rule7 =
  Tgd.make ~name:"rule7_patient_unit"
    ~body:
      [ Atom.make "patient_ward" [ v "W"; v "D"; v "P" ];
        Atom.make "unit_ward" [ v "U"; v "W" ] ]
    ~head:[ Atom.make "patient_unit" [ v "U"; v "D"; v "P" ] ]
    ()

let rule8 =
  Tgd.make ~name:"rule8_shifts"
    ~body:
      [ Atom.make "working_schedules" [ v "U"; v "D"; v "N"; v "T" ];
        Atom.make "unit_ward" [ v "U"; v "W" ] ]
    ~head:[ Atom.make "shifts" [ v "W"; v "D"; v "N"; v "Z" ] ]
    ()

let rule9 =
  Tgd.make ~name:"rule9_discharge"
    ~body:[ Atom.make "discharge_patients" [ v "I"; v "D"; v "P" ] ]
    ~head:
      [ Atom.make "institution_unit" [ v "I"; v "U" ];
        Atom.make "patient_unit" [ v "U"; v "D"; v "P" ] ]
    ()

let egd_thermometer =
  Egd.make ~name:"egd_thermometer"
    ~body:
      [ Atom.make "thermometer" [ v "W1"; v "T1"; v "N1" ];
        Atom.make "thermometer" [ v "W2"; v "T2"; v "N2" ];
        Atom.make "unit_ward" [ v "U"; v "W1" ];
        Atom.make "unit_ward" [ v "U"; v "W2" ] ]
    (v "T1") (v "T2")

(* "No patient was in the intensive care unit after August 2005": one
   constraint per later month in the Time instance. *)
let ncs_intensive_closed =
  List.map
    (fun month ->
      Nc.make
        ~name:("nc_intensive_closed_" ^ month)
        [ Atom.make "patient_ward" [ v "W"; v "D"; v "P" ];
          Atom.make "unit_ward" [ c "Intensive"; v "W" ];
          Atom.make "month_day" [ c month; v "D" ] ])
    [ "Sep/2005"; "Oct/2005" ]

(* ------------------------------------------------------------------ *)
(* Ontology *)

let data_instance ~raw_patient_ward ~include_rule9 =
  let inst = R.Instance.create () in
  let add rel =
    let r = R.Instance.declare inst (R.Relation.schema rel) in
    R.Relation.iter (fun t -> ignore (R.Relation.add r t)) rel
  in
  add (if raw_patient_ward then patient_ward_raw else patient_ward);
  add working_schedules;
  add shifts;
  add thermometer;
  if include_rule9 then add discharge_patients;
  inst

let ontology ?(raw_patient_ward = false) ?(include_rule9 = true) () =
  Md_ontology.make ~schema:md_schema
    ~dim_instances:[ hospital_instance; time_instance; device_instance ]
    ~data:(data_instance ~raw_patient_ward ~include_rule9)
    ~rules:(if include_rule9 then [ rule7; rule8; rule9 ] else [ rule7; rule8 ])
    ~egds:[ egd_thermometer ] ~ncs:ncs_intensive_closed ()

let upward_ontology () =
  let inst = R.Instance.create () in
  let add rel =
    let r = R.Instance.declare inst (R.Relation.schema rel) in
    R.Relation.iter (fun t -> ignore (R.Relation.add r t)) rel
  in
  add patient_ward;
  Md_ontology.make ~schema:md_schema
    ~dim_instances:[ hospital_instance; time_instance; device_instance ]
    ~data:inst ~rules:[ rule7 ] ()

let source () =
  let inst = R.Instance.create () in
  let r = R.Instance.declare inst measurements_schema in
  R.Relation.iter (fun t -> ignore (R.Relation.add r t)) measurements;
  inst

(* ------------------------------------------------------------------ *)
(* The quality context (§V, Example 7) *)

let context_rules =
  [ Tgd.make ~name:"taken_by_nurse"
      ~body:
        [ Atom.make "working_schedules" [ v "U"; v "D"; v "N"; v "Y" ];
          Atom.make "day_time" [ v "D"; v "T" ];
          Atom.make "patient_unit" [ v "U"; v "D"; v "P" ] ]
      ~head:[ Atom.make "taken_by_nurse" [ v "T"; v "P"; v "N"; v "Y" ] ]
      ();
    (* the §V guideline: standard-unit measurements use brand B1 *)
    Tgd.make ~name:"taken_with_therm"
      ~body:
        [ Atom.make "patient_unit" [ c "Standard"; v "D"; v "P" ];
          Atom.make "day_time" [ v "D"; v "T" ] ]
      ~head:[ Atom.make "taken_with_therm" [ v "T"; v "P"; c "B1" ] ]
      ();
    Tgd.make ~name:"measurements_ext"
      ~body:
        [ Atom.make "measurements_c" [ v "T"; v "P"; v "V" ];
          Atom.make "taken_by_nurse" [ v "T"; v "P"; v "N"; v "Y" ];
          Atom.make "taken_with_therm" [ v "T"; v "P"; v "B" ] ]
      ~head:[ Atom.make "measurements_ext" [ v "T"; v "P"; v "V"; v "Y"; v "B" ] ]
      ();
    Tgd.make ~name:"measurements_q"
      ~body:
        [ Atom.make "measurements_ext" [ v "T"; v "P"; v "V"; c "cert."; c "B1" ] ]
      ~head:[ Atom.make "measurements_q" [ v "T"; v "P"; v "V" ] ]
      () ]

let context ?raw_patient_ward () =
  Mdqa_context.Context.make
    ~ontology:(ontology ?raw_patient_ward ())
    ~mappings:[ { Mdqa_context.Context.source = "measurements"; target = "measurements_c" } ]
    ~rules:context_rules
    ~quality_versions:[ ("measurements", "measurements_q") ]
    ()

let doctor_query =
  Query.make ~name:"doctor"
    ~cmps:
      [ Atom.Cmp.make Atom.Cmp.Eq (v "P") (c "Tom Waits");
        Atom.Cmp.make Atom.Cmp.Ge (v "T") (c "Sep/5-11:45");
        Atom.Cmp.make Atom.Cmp.Le (v "T") (c "Sep/5-12:15") ]
    ~head:[ v "T"; v "P"; v "V" ]
    [ Atom.make "measurements" [ v "T"; v "P"; v "V" ] ]

let example5_query =
  Query.make ~name:"q_example5" ~head:[ v "D" ]
    [ Atom.make "shifts" [ c "W1"; v "D"; c "Mark"; v "S" ] ]

(* ------------------------------------------------------------------ *)
(* Synthetic scaled instances *)

module Gen = struct
  type params = {
    institutions : int;
    units_per_institution : int;
    wards_per_unit : int;
    patients : int;
    days : int;
    measurements_per_patient_day : int;
  }

  let default =
    { institutions = 1;
      units_per_institution = 3;
      wards_per_unit = 2;
      patients = 20;
      days = 10;
      measurements_per_patient_day = 1 }

  let scale n =
    { default with
      patients = n;
      days = max 3 (n / 4);
      wards_per_unit = max 2 (n / 25) }

  (* Sortable, fixed-width names. *)
  let inst_name i = Printf.sprintf "I%02d" i
  let unit_name i u = Printf.sprintf "U%02d_%02d" i u
  let ward_name i u w = Printf.sprintf "W%02d_%02d_%02d" i u w
  let day_name d = Printf.sprintf "D%03d" d
  let month_name m = Printf.sprintf "M%02d" m
  let patient_name p = Printf.sprintf "P%04d" p
  let nurse_name i u = Printf.sprintf "N%02d_%02d" i u
  let instant_name d p m = Printf.sprintf "%s-%s-%02d" (day_name d) (patient_name p) m

  let month_of_day_idx d = (d - 1) / 30

  (* Deterministic ward assignment: patient p lives in one ward. *)
  let ward_of p g =
    let total = g.institutions * g.units_per_institution * g.wards_per_unit in
    let k = p mod total in
    let i = k / (g.units_per_institution * g.wards_per_unit) in
    let r = k mod (g.units_per_institution * g.wards_per_unit) in
    let u = r / g.wards_per_unit in
    let w = r mod g.wards_per_unit in
    (i + 1, u + 1, w + 1)

  let dim_instances g =
    let insts = List.init g.institutions (fun i -> inst_name (i + 1)) in
    let units =
      List.concat
        (List.init g.institutions (fun i ->
             List.init g.units_per_institution (fun u ->
                 unit_name (i + 1) (u + 1))))
    in
    let wards =
      List.concat
        (List.init g.institutions (fun i ->
             List.concat
               (List.init g.units_per_institution (fun u ->
                    List.init g.wards_per_unit (fun w ->
                        ward_name (i + 1) (u + 1) (w + 1))))))
    in
    let ward_links =
      List.concat
        (List.init g.institutions (fun i ->
             List.concat
               (List.init g.units_per_institution (fun u ->
                    List.init g.wards_per_unit (fun w ->
                        ( ward_name (i + 1) (u + 1) (w + 1),
                          unit_name (i + 1) (u + 1) ))))))
    in
    let unit_links =
      List.concat
        (List.init g.institutions (fun i ->
             List.init g.units_per_institution (fun u ->
                 (unit_name (i + 1) (u + 1), inst_name (i + 1)))))
    in
    let hosp =
      Dim_instance.make hospital_dim
        ~members:[ ("Ward", wards); ("Unit", units); ("Institution", insts) ]
        ~links:(ward_links @ unit_links)
    in
    let day_list = List.init g.days (fun d -> day_name (d + 1)) in
    let months =
      List.sort_uniq compare
        (List.init g.days (fun d -> month_name (month_of_day_idx (d + 1))))
    in
    let instants =
      List.concat
        (List.init g.days (fun d ->
             List.concat
               (List.init g.patients (fun p ->
                    List.init g.measurements_per_patient_day (fun m ->
                        instant_name (d + 1) (p + 1) (m + 1))))))
    in
    let time =
      Dim_instance.make time_dim
        ~members:
          [ ("Time", instants); ("Day", day_list); ("Month", months);
            ("Year", [ "Y1" ]) ]
        ~links:
          (List.map (fun t -> (t, String.sub t 0 4)) instants
          @ List.map
              (fun d -> (d, month_name (month_of_day_idx (int_of_string (String.sub d 1 3)))))
              day_list
          @ List.map (fun m -> (m, "Y1")) months)
    in
    (hosp, time)

  let data g =
    let inst = R.Instance.create () in
    let pw = R.Instance.declare inst patient_ward_schema in
    let ws = R.Instance.declare inst working_schedules_schema in
    let sh = R.Instance.declare inst shifts_schema in
    (* Some extensional shifts already recorded (odd days, first ward
       of each unit): the restricted chase skips the triggers they
       satisfy, the oblivious chase fires anyway — the ablation the
       benchmark harness measures. *)
    for i = 1 to g.institutions do
      for u = 1 to g.units_per_institution do
        for d = 1 to g.days do
          if d mod 2 = 1 then
            ignore
              (R.Relation.add sh
                 (tuple_syms
                    [ ward_name i u 1; day_name d; nurse_name i u; "morning" ]))
        done
      done
    done;
    for p = 1 to g.patients do
      let i, u, w = ward_of p g in
      for d = 1 to g.days do
        ignore
          (R.Relation.add pw
             (tuple_syms [ ward_name i u w; day_name d; patient_name p ]))
      done
    done;
    for i = 1 to g.institutions do
      for u = 1 to g.units_per_institution do
        for d = 1 to g.days do
          (* nurses in unit 1 are certified, elsewhere alternating *)
          let typ = if u = 1 || (u + d) mod 2 = 0 then "cert." else "non-c." in
          ignore
            (R.Relation.add ws
               (tuple_syms [ unit_name i u; day_name d; nurse_name i u; typ ]))
        done
      done
    done;
    inst

  let ontology g =
    let hosp, time = dim_instances g in
    Md_ontology.make ~schema:md_schema ~dim_instances:[ hosp; time; device_instance ]
      ~data:(data g) ~rules:[ rule7; rule8 ] ()

  let source g =
    let inst = R.Instance.create () in
    let m = R.Instance.declare inst measurements_schema in
    for p = 1 to g.patients do
      for d = 1 to g.days do
        for k = 1 to g.measurements_per_patient_day do
          let value = 36.0 +. float_of_int (((p * 31) + (d * 7) + k) mod 40) /. 10. in
          ignore
            (R.Relation.add m
               (R.Tuple.of_list
                  [ sym (instant_name d p k); sym (patient_name p);
                    R.Value.real value ]))
        done
      done
    done;
    inst

  let std_units g =
    let schema = R.Rel_schema.of_names "std_unit" [ "unit" ] in
    relation_of schema
      (List.init g.institutions (fun i -> tuple_syms [ unit_name (i + 1) 1 ]))

  (* One fused quality rule: at scale, materializing the paper's
     intermediate predicates would pair every patient of a unit with
     every instant of a day; anchoring the rule on measurements_c keeps
     the derivation linear in the number of measurements. *)
  let gen_context_rules =
    [ Tgd.make ~name:"measurements_q_gen"
        ~body:
          [ Atom.make "measurements_c" [ v "T"; v "P"; v "V" ];
            Atom.make "day_time" [ v "D"; v "T" ];
            Atom.make "patient_unit" [ v "U"; v "D"; v "P" ];
            Atom.make "std_unit" [ v "U" ];
            Atom.make "working_schedules" [ v "U"; v "D"; v "N"; c "cert." ] ]
        ~head:[ Atom.make "measurements_q" [ v "T"; v "P"; v "V" ] ]
        () ]

  let context g =
    Mdqa_context.Context.make ~ontology:(ontology g)
      ~mappings:
        [ { Mdqa_context.Context.source = "measurements";
            target = "measurements_c" } ]
      ~rules:gen_context_rules
      ~externals:[ std_units g ]
      ~quality_versions:[ ("measurements", "measurements_q") ]
      ()

  let doctor_query g =
    ignore g;
    Query.make ~name:"doctor_gen"
      ~cmps:
        [ Atom.Cmp.make Atom.Cmp.Eq (v "P") (c (patient_name 1));
          Atom.Cmp.make Atom.Cmp.Ge (v "T") (c (day_name 1));
          Atom.Cmp.make Atom.Cmp.Le (v "T") (c (day_name 1 ^ "~")) ]
      ~head:[ v "T"; v "P"; v "V" ]
      [ Atom.make "measurements" [ v "T"; v "P"; v "V" ] ]
end
