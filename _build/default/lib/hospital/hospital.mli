(** The paper's running example, encoded once and shared by the test
    suite, the runnable examples and the benchmark harness.

    Everything here follows the paper's Figures 1–2 and Tables I–V:

    - dimensions [Hospital] (Ward → Unit → Institution) and [Time]
      (Time → Day → Month → Year), with the member assignment implied
      by the narrative (wards W1, W2 in the Standard unit, W3 in
      Intensive, W4 in Terminal; Standard and Intensive in H1, Terminal
      in H2);
    - the categorical relations [measurements] (Table I),
      [patient_ward], [working_schedules] (Table III), [shifts]
      (Table IV), [discharge_patients] (Table V) and [thermometer];
    - dimensional rules (7) (upward), (8) (downward, existential
      shift), (9) (downward with existential unit — form (10));
    - the thermometer EGD (6) and the "intensive care closed after
      August 2005" negative constraints;
    - the quality context of §V / Example 7, with the quality
      predicates [taken_by_nurse] and [taken_with_therm] and the
      quality version [measurements_q] (Table II).

    Synthetic scaled versions of the same ontology (for the benchmark
    harness) are produced by {!Gen}. *)

open Mdqa_multidim

(** {1 Dimensions} *)

val hospital_dim : Dim_schema.t
val time_dim : Dim_schema.t
val hospital_instance : Dim_instance.t
val time_instance : Dim_instance.t

val device_dim : Dim_schema.t
(** Thermometer brands: the one-category dimension implied by the
    paper's [Thermometer(Ward, Thermometertype; Nurse)] schema. *)

val device_instance : Dim_instance.t

(** {1 Categorical relations (the paper's tables)} *)

val measurements : Mdqa_relational.Relation.t
(** Table I. *)

val expected_measurements_q : Mdqa_relational.Relation.t
(** Table II — what the quality pipeline must compute. *)

val patient_ward : Mdqa_relational.Relation.t
(** Consistent version (without the discarded intensive-care tuple). *)

val patient_ward_raw : Mdqa_relational.Relation.t
(** With the third tuple placing Tom Waits in ward W3 (Intensive) on
    Sep/7 — violates the closed-unit constraint, as in Example 1. *)

val working_schedules : Mdqa_relational.Relation.t
(** Table III. *)

val shifts : Mdqa_relational.Relation.t
(** Table IV (extensional part). *)

val discharge_patients : Mdqa_relational.Relation.t
(** Table V. *)

val thermometer : Mdqa_relational.Relation.t

(** {1 Rules and constraints} *)

val rule7 : Mdqa_datalog.Tgd.t
(** [patient_unit(U,D,P) :- patient_ward(W,D,P), unit_ward(U,W)]. *)

val rule8 : Mdqa_datalog.Tgd.t
(** [∃Z shifts(W,D,N,Z) :- working_schedules(U,D,N,T), unit_ward(U,W)]. *)

val rule9 : Mdqa_datalog.Tgd.t
(** [∃U institution_unit(I,U), patient_unit(U,D,P) :-
       discharge_patients(I,D,P)] — form (10). *)

val egd_thermometer : Mdqa_datalog.Egd.t
(** Rule (6): thermometers within a unit have a single type. *)

val ncs_intensive_closed : Mdqa_datalog.Nc.t list
(** "No patient was in the intensive care unit after August 2005" —
    one constraint per post-August month present in the Time
    dimension. *)

(** {1 Ontology and context} *)

val md_schema : Md_schema.t

val ontology :
  ?raw_patient_ward:bool ->
  ?include_rule9:bool ->
  unit ->
  Md_ontology.t
(** The full ontology M.  [raw_patient_ward] (default false) uses
    {!patient_ward_raw} to demonstrate the constraint violation;
    [include_rule9] (default true) includes the form-(10) rule. *)

val upward_ontology : unit -> Md_ontology.t
(** Only rule (7): the upward-only fragment of §IV, eligible for FO
    rewriting. *)

val source : unit -> Mdqa_relational.Instance.t
(** The instance D under assessment: the [measurements] relation. *)

val context_rules : Mdqa_datalog.Tgd.t list
(** Example 7's contextual definitions: [taken_by_nurse],
    [taken_with_therm], [measurements_ext] and [measurements_q]. *)

val context : ?raw_patient_ward:bool -> unit -> Mdqa_context.Context.t
(** The quality context of Fig. 2 for the hospital example. *)

val doctor_query : Mdqa_datalog.Query.t
(** "Body temperatures of Tom Waits on September 5 taken around noon"
    — over the original schema; rewritten to [measurements_q] by the
    context. *)

val example5_query : Mdqa_datalog.Query.t
(** [Q'(d) ← shifts(W1, d, Mark, s)] — answered via downward
    navigation; the expected answer is [Sep/9]. *)

(** {1 Synthetic scaled instances (benchmarks)} *)

module Gen : sig
  type params = {
    institutions : int;
    units_per_institution : int;
    wards_per_unit : int;
    patients : int;
    days : int;
    measurements_per_patient_day : int;  (** instants per patient/day *)
  }

  val default : params
  (** 1 institution × 3 units × 2 wards, 20 patients, 10 days, 1
      measurement per patient per day. *)

  val scale : int -> params
  (** [scale n]: [n] patients over [max 3 (n/4)] days, hospital shape
      as in [default] but with wards growing with [n]. *)

  val patient_name : int -> string
  val day_name : int -> string

  val dim_instances : params -> Dim_instance.t * Dim_instance.t
  (** The scaled Hospital and Time dimension instances. *)

  val data : params -> Mdqa_relational.Instance.t
  (** The scaled categorical relation data (patient/ward assignment and
      working schedules). *)

  val ontology : params -> Md_ontology.t
  (** Scaled dimensions, patient/ward assignment, working schedules and
      rules (7) and (8) — the same shape as the paper example. *)

  val source : params -> Mdqa_relational.Instance.t
  (** Scaled [measurements] table; roughly half the measurements are
      taken under quality conditions (standard-unit wards). *)

  val context : params -> Mdqa_context.Context.t

  val doctor_query : params -> Mdqa_datalog.Query.t
  (** A selective query over one patient and one day's window. *)
end
