open Mdqa_multidim
open Mdqa_datalog
module R = Mdqa_relational

let v = Term.var
let c s = Term.Const (R.Value.sym s)
let sym = R.Value.sym
let tuple_syms l = R.Tuple.of_list (List.map sym l)

(* ------------------------------------------------------------------ *)
(* Dimensions *)

let network_dim = Dim_schema.linear ~name:"Network" [ "Cell"; "Tower"; "Region" ]

(* the Calendar DAG: Day rolls up through Weeks and through Months *)
let calendar_dim =
  Dim_schema.make ~name:"Calendar"
    ~edges:
      [ ("Day", "Week"); ("Day", "Month"); ("Week", "Year"); ("Month", "Year") ]

let cells = List.init 8 (fun i -> Printf.sprintf "c%d" (i + 1))
let towers = List.init 4 (fun i -> Printf.sprintf "t%d" (i + 1))

let network_instance =
  Dim_instance.make network_dim
    ~members:
      [ ("Cell", cells); ("Tower", towers); ("Region", [ "north"; "south" ]) ]
    ~links:
      (List.mapi
         (fun i cell -> (cell, Printf.sprintf "t%d" ((i / 2) + 1)))
         cells
      @ [ ("t1", "north"); ("t2", "north"); ("t3", "south"); ("t4", "south") ])

let day_name i = Printf.sprintf "d%02d" i
let days = List.init 28 (fun i -> day_name (i + 1))
let week_of i = Printf.sprintf "w%d" (((i - 1) / 7) + 1)
let month_of i = Printf.sprintf "m%d" (((i - 1) / 14) + 1)

let calendar_instance =
  Dim_instance.make calendar_dim
    ~members:
      [ ("Day", days); ("Week", [ "w1"; "w2"; "w3"; "w4" ]);
        ("Month", [ "m1"; "m2" ]); ("Year", [ "y1" ]) ]
    ~links:
      (List.concat
         (List.mapi
            (fun i d -> [ (d, week_of (i + 1)); (d, month_of (i + 1)) ])
            days)
      @ [ ("w1", "y1"); ("w2", "y1"); ("w3", "y1"); ("w4", "y1");
          ("m1", "y1"); ("m2", "y1") ])

(* ------------------------------------------------------------------ *)
(* Categorical relations *)

let cat = R.Attribute.categorical
let plain = R.Attribute.plain

let tower_checked_schema =
  R.Rel_schema.make "tower_checked"
    [ cat "tower" ~dimension:"Network" ~category:"Tower";
      cat "week" ~dimension:"Calendar" ~category:"Week";
      plain "crew" ]

let cell_checked_schema =
  R.Rel_schema.make "cell_checked"
    [ cat "cell" ~dimension:"Network" ~category:"Cell";
      cat "day" ~dimension:"Calendar" ~category:"Day" ]

let cdr_fact_schema =
  R.Rel_schema.make "cdr_fact"
    [ cat "cell" ~dimension:"Network" ~category:"Cell";
      cat "day" ~dimension:"Calendar" ~category:"Day";
      plain "caller"; plain "duration" ]

let region_activity_schema =
  R.Rel_schema.make "region_activity"
    [ cat "region" ~dimension:"Network" ~category:"Region";
      cat "month" ~dimension:"Calendar" ~category:"Month" ]

let md_schema =
  Md_schema.make
    ~dimensions:[ network_dim; calendar_dim ]
    ~relations:
      [ tower_checked_schema; cell_checked_schema; cdr_fact_schema;
        region_activity_schema ]

let tower_checked =
  R.Relation.of_tuples tower_checked_schema
    (List.map tuple_syms
       [ [ "t1"; "w1"; "crewA" ]; [ "t2"; "w2"; "crewB" ];
         [ "t1"; "w3"; "crewA" ]; [ "t3"; "w1"; "crewC" ] ])

let cdr_schema =
  R.Rel_schema.of_names "cdr" [ "day"; "caller"; "cell"; "duration" ]

let cdr_rows =
  [ ("d03", "alice", "c1", 120);  (* t1 / w1 checked -> quality *)
    ("d10", "alice", "c3", 45);   (* t2 / w2 checked -> quality *)
    ("d10", "alice", "c5", 30);   (* t3 checked only in w1 -> out *)
    ("d17", "bob", "c2", 60);     (* t1 / w3 checked -> quality *)
    ("d22", "bob", "c4", 90);     (* t2 / w4 not checked -> out *)
    ("d05", "carol", "c7", 15) ]  (* t4 never checked -> out *)

let expected_quality_days = [ "d03"; "d10"; "d17" ]

let cdr_tuple (d, caller, cell, dur) =
  R.Tuple.of_list [ sym d; sym caller; sym cell; R.Value.int dur ]

let cdr = R.Relation.of_tuples cdr_schema (List.map cdr_tuple cdr_rows)

let cdr_bad_region =
  R.Relation.of_tuples cdr_schema
    (List.map cdr_tuple (cdr_rows @ [ ("d20", "dave", "c7", 200) ]))

(* ------------------------------------------------------------------ *)
(* Rules and constraints *)

(* downward on both dimensions: a weekly tower inspection covers every
   cell of the tower on every day of the week *)
let rule_cell_checked =
  Tgd.make ~name:"cell_checked_down"
    ~body:
      [ Atom.make "tower_checked" [ v "TW"; v "WK"; v "CREW" ];
        Atom.make "tower_cell" [ v "TW"; v "C" ];
        Atom.make "week_day" [ v "WK"; v "D" ] ]
    ~head:[ Atom.make "cell_checked" [ v "C"; v "D" ] ]
    ()

(* upward on both dimensions: traffic aggregates at (Region, Month) *)
let rule_region_activity =
  Tgd.make ~name:"region_activity_up"
    ~body:
      [ Atom.make "cdr_fact" [ v "C"; v "D"; v "CALLER"; v "DUR" ];
        Atom.make "tower_cell" [ v "TW"; v "C" ];
        Atom.make "region_tower" [ v "R"; v "TW" ];
        Atom.make "month_day" [ v "M"; v "D" ] ]
    ~head:[ Atom.make "region_activity" [ v "R"; v "M" ] ]
    ()

let egd_one_crew =
  Egd.make ~name:"egd_one_crew"
    ~body:
      [ Atom.make "tower_checked" [ v "TW"; v "WK"; v "C1" ];
        Atom.make "tower_checked" [ v "TW"; v "WK"; v "C2" ] ]
    (v "C1") (v "C2")

let nc_south_decommissioned =
  Nc.make ~name:"nc_south_decommissioned"
    [ Atom.make "cdr_fact" [ v "C"; v "D"; v "CALLER"; v "DUR" ];
      Atom.make "tower_cell" [ v "TW"; v "C" ];
      Atom.make "region_tower" [ c "south"; v "TW" ];
      Atom.make "month_day" [ c "m2"; v "D" ] ]

(* ------------------------------------------------------------------ *)
(* Ontology, context *)

let ontology ?(bad_region = false) () =
  ignore bad_region;
  let data = R.Instance.create () in
  let r = R.Instance.declare data tower_checked_schema in
  R.Relation.iter (fun t -> ignore (R.Relation.add r t)) tower_checked;
  Md_ontology.make ~schema:md_schema
    ~dim_instances:[ network_instance; calendar_instance ]
    ~data
    ~rules:[ rule_cell_checked; rule_region_activity ]
    ~egds:[ egd_one_crew ]
    ~ncs:[ nc_south_decommissioned ]
    ()

let source ?(bad_region = false) () =
  let inst = R.Instance.create () in
  let r = R.Instance.declare inst cdr_schema in
  R.Relation.iter
    (fun t -> ignore (R.Relation.add r t))
    (if bad_region then cdr_bad_region else cdr);
  inst

let context ?bad_region () =
  Mdqa_context.Context.make
    ~ontology:(ontology ?bad_region ())
    ~mappings:[ { Mdqa_context.Context.source = "cdr"; target = "cdr_c" } ]
    ~rules:
      [ (* place the mapped copy into the cube as a categorical relation *)
        Tgd.make ~name:"cdr_into_cube"
          ~body:[ Atom.make "cdr_c" [ v "D"; v "CALLER"; v "C"; v "DUR" ] ]
          ~head:[ Atom.make "cdr_fact" [ v "C"; v "D"; v "CALLER"; v "DUR" ] ]
          ();
        Tgd.make ~name:"cdr_q"
          ~body:
            [ Atom.make "cdr_c" [ v "D"; v "CALLER"; v "C"; v "DUR" ];
              Atom.make "cell_checked" [ v "C"; v "D" ] ]
          ~head:[ Atom.make "cdr_q" [ v "D"; v "CALLER"; v "C"; v "DUR" ] ]
          () ]
    ~quality_versions:[ ("cdr", "cdr_q") ]
    ()

let caller_query =
  Query.make ~name:"alice_week2"
    ~cmps:
      [ Atom.Cmp.make Atom.Cmp.Ge (v "D") (c "d08");
        Atom.Cmp.make Atom.Cmp.Le (v "D") (c "d14") ]
    ~head:[ v "D"; v "C" ]
    [ Atom.make "cdr" [ v "D"; c "alice"; v "C"; v "DUR" ] ]
