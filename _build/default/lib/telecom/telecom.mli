(** A second complete worked domain: call-detail-record (CDR) quality
    in a mobile network.

    This fixture exercises the parts of the multidimensional model the
    hospital example does not:

    - a {e non-linear} (DAG) dimension: [Calendar] rolls days up both
      the [Day → Week → Year] and the [Day → Month → Year] paths;
    - a dimensional rule navigating {e two dimensions at once}
      (tower → cell on [Network] and week → day on [Calendar]);
    - aggregation along the two alternative roll-up paths of the DAG.

    The story: the operator records CDRs per cell and day.  Tower
    inspections are logged per {e week} at the {e tower} level
    ([tower_checked]); the institutional quality requirement is that a
    CDR counts only if its cell's tower was inspected during the week
    of the call.  Whether a {e cell} is covered on a {e day} is derived
    by downward navigation on both dimensions ([cell_checked]).  An
    inter-dimensional constraint forbids traffic in the decommissioned
    south region during the second month. *)

open Mdqa_multidim

(** {1 Dimensions} *)

val network_dim : Dim_schema.t
(** Cell → Tower → Region (linear). *)

val calendar_dim : Dim_schema.t
(** Day → Week → Year and Day → Month → Year (a DAG). *)

val network_instance : Dim_instance.t
(** 8 cells / 4 towers / 2 regions. *)

val calendar_instance : Dim_instance.t
(** 28 days; 4 weeks; 2 months; 1 year — strict and homogeneous on both
    paths. *)

(** {1 Schema and data} *)

val md_schema : Md_schema.t

val tower_checked : Mdqa_relational.Relation.t
(** Inspection log at (Tower, Week) level. *)

val cdr : Mdqa_relational.Relation.t
(** The instance under assessment: (day, caller, cell, duration). *)

val cdr_bad_region : Mdqa_relational.Relation.t
(** [cdr] plus a south-region call in month m2 — violates the
    decommissioning constraint. *)

(** {1 Rules and constraints} *)

val rule_cell_checked : Mdqa_datalog.Tgd.t
(** [cell_checked(C, D) :- tower_checked(TW, WK, CREW),
    tower_cell(TW, C), week_day(WK, D)] — downward on {e both}
    dimensions. *)

val rule_region_activity : Mdqa_datalog.Tgd.t
(** [region_activity(R, M) :- cdr_fact(...), tower_cell(TW, C),
    region_tower(R, TW), month_day(M, D)] — upward on both. *)

val egd_one_crew : Mdqa_datalog.Egd.t
(** One crew per tower per week. *)

val nc_south_decommissioned : Mdqa_datalog.Nc.t
(** No south-region traffic in month m2. *)

(** {1 Ontology, context, queries} *)

val ontology : ?bad_region:bool -> unit -> Md_ontology.t
val source : ?bad_region:bool -> unit -> Mdqa_relational.Instance.t
val context : ?bad_region:bool -> unit -> Mdqa_context.Context.t

val caller_query : Mdqa_datalog.Query.t
(** The calls of caller [alice] in week w2 (via the day members). *)

val expected_quality_days : string list
(** The days whose CDRs survive the quality requirement, for the
    fixture data — used by tests and the example. *)
