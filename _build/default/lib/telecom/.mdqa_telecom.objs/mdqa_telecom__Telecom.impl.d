lib/telecom/telecom.ml: Atom Dim_instance Dim_schema Egd List Md_ontology Md_schema Mdqa_context Mdqa_datalog Mdqa_multidim Mdqa_relational Nc Printf Query Term Tgd
