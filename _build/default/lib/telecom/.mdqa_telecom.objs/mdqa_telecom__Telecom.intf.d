lib/telecom/telecom.mli: Dim_instance Dim_schema Md_ontology Md_schema Mdqa_context Mdqa_datalog Mdqa_multidim Mdqa_relational
