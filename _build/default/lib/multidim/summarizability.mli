(** Summarizability diagnosis in the HM style (Hurtado–Gutierrez–
    Mendelzon, TODS 2005): aggregating at a higher category from
    pre-aggregated results at a lower one is correct exactly when the
    roll-up between the two is strict (no double counting) and covering
    (no lost members).

    This module reports, per category pair, the members violating
    either condition — the diagnosis backing the sales/OLAP example and
    the Figure 1 report. *)

type violation =
  | Non_strict of {
      member : Mdqa_relational.Value.t;
      category : string;
      ancestor_category : string;
      ancestors : Mdqa_relational.Value.t list;
          (** ≥ 2 distinct ancestors *)
    }
  | Non_covering of {
      member : Mdqa_relational.Value.t;
      category : string;
      parent_category : string;  (** no parent there *)
    }

type report = {
  strict : bool;
  homogeneous : bool;
  violations : violation list;
}

val diagnose : Dim_instance.t -> report

val summarizable :
  Dim_instance.t -> from_category:string -> to_category:string -> bool
(** Can aggregates at [from_category] be correctly combined into
    aggregates at [to_category]?  True iff the roll-up between the two
    is functional (strict) and total (covering) on the members of
    [from_category]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
