(** Summarizability-guarded aggregation over categorical relations.

    OLAP-style roll-up aggregates: group the tuples of a categorical
    relation by the ancestor (in a chosen category) of one of its
    categorical attributes, and aggregate a numeric attribute.

    This is where the HM summarizability conditions pay off concretely:
    by default the roll-up is {e checked} — if the member hierarchy
    between the attribute's category and the target category is not
    strict and covering, aggregation would double-count or drop data,
    and [Error] is returned instead of a silently wrong total
    (disable with [~check:false] to observe the wrong totals, as the
    sales example does). *)

type op =
  | Sum
  | Count
  | Avg
  | Min
  | Max

type row = {
  group : Mdqa_relational.Value.t;  (** the ancestor member *)
  value : float;
  tuples : int;  (** contributing tuples *)
}

val rollup :
  Dim_instance.t ->
  relation:Mdqa_relational.Relation.t ->
  group_position:int ->
  to_category:string ->
  ?value_position:int ->
  op:op ->
  ?check:bool ->
  unit ->
  (row list, string) result
(** [rollup di ~relation ~group_position ~to_category ~value_position
    ~op ()] groups by the [to_category]-ancestor of the member at
    [group_position] and aggregates the numeric value at
    [value_position] ([Count] needs no value position).  Rows are
    sorted by group.

    Errors: the attribute's category does not roll up to
    [to_category]; the roll-up is not summarizable (unless
    [~check:false]); a tuple's value is not numeric; [value_position]
    missing for an op that needs it.  Tuples whose member has no
    ancestor in the target category are dropped when [check] is off
    (that is exactly the non-covering data loss). *)

val pp_row : Format.formatter -> row -> unit
