(** Analysis of TGDs as dimensional rules of the paper's forms (4) and
    (10), with validation of their syntactic side conditions.

    Form (4): single-atom head over a categorical relation; the body
    joins categorical relations with parent-child atoms; existential
    variables appear only at {e non-categorical} head positions; and
    variables shared between body atoms appear only at categorical
    positions (this is what puts the compiled ontology in weakly-sticky
    Datalog±, §III).

    Form (10): the head may contain parent-child atoms and the
    existential variables may be {e categorical} (disjunctive knowledge
    about, e.g., the unit a discharged patient was in); every
    categorical attribute of the body must sit at a level ≥ the level
    of the head's categorical attributes within the same dimension
    (only downward generation, so only finitely many nulls).

    Navigation direction (§III): for a parent-child body atom
    [D(p, c)], the rule navigates {e upward} when the child variable is
    supplied by a body categorical relation and the parent variable
    flows to the head, and {e downward} in the mirrored case. *)

type navigation =
  | Upward
  | Downward
  | Both  (** distinct joins navigate in both directions *)
  | Static  (** no parent-child join: no navigation *)

type form = Form4 | Form10

type info = {
  tgd : Mdqa_datalog.Tgd.t;
  form : form;
  navigation : navigation;
  dimensions : string list;  (** dimensions navigated, sorted *)
}

val analyze : Md_schema.t -> Mdqa_datalog.Tgd.t -> (info, string) result
(** Classify and validate a TGD as a dimensional rule.  [Error]
    explains the violated side condition (e.g. a shared variable at a
    non-categorical position, or an unknown predicate). *)

val is_upward_only : Md_schema.t -> Mdqa_datalog.Tgd.t list -> bool
(** §IV's syntactic detection: every rule analyses to [Form4] with
    [Upward] or [Static] navigation and no existential variables. *)

val pp_info : Format.formatter -> info -> unit
