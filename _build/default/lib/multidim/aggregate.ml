module R = Mdqa_relational

type op = Sum | Count | Avg | Min | Max

type row = {
  group : R.Value.t;
  value : float;
  tuples : int;
}

type acc = {
  mutable total : float;
  mutable count : int;
  mutable vmin : float;
  mutable vmax : float;
}

let numeric = function
  | R.Value.Int i -> Some (float_of_int i)
  | R.Value.Real r -> Some r
  | R.Value.Sym _ | R.Value.Null _ -> None

let rollup di ~relation ~group_position ~to_category ?value_position ~op
    ?(check = true) () =
  let ( let* ) = Result.bind in
  let* () =
    if group_position < 0 || group_position >= R.Relation.arity relation then
      Error
        (Printf.sprintf "group position %d out of range" group_position)
    else Ok ()
  in
  (* the category the grouped attribute ranges over, from the data *)
  let* from_category =
    let cats =
      R.Relation.fold
        (fun t acc ->
          match Dim_instance.category_of di (R.Tuple.get t group_position) with
          | Some c when not (List.mem c acc) -> c :: acc
          | _ -> acc)
        relation []
    in
    match cats with
    | [] -> Error "no tuple carries a known member at the group position"
    | [ c ] -> Ok c
    | cs ->
      Error
        (Printf.sprintf "mixed categories at the group position: %s"
           (String.concat ", " cs))
  in
  let schema = Dim_instance.schema di in
  let* () =
    if Dim_schema.is_ancestor schema ~ancestor:to_category from_category then
      Ok ()
    else
      Error
        (Printf.sprintf "%s does not roll up to %s" from_category to_category)
  in
  let* () =
    if (not check) || Summarizability.summarizable di ~from_category ~to_category
    then Ok ()
    else
      Error
        (Printf.sprintf
           "roll-up %s -> %s is not summarizable (non-strict or non-covering \
            members); aggregating would be incorrect"
           from_category to_category)
  in
  let* get_value =
    match op, value_position with
    | Count, _ -> Ok (fun _ -> Ok 1.0)
    | _, None -> Error "this aggregate needs a value position"
    | _, Some vp ->
      if vp < 0 || vp >= R.Relation.arity relation then
        Error (Printf.sprintf "value position %d out of range" vp)
      else
        Ok
          (fun t ->
            match numeric (R.Tuple.get t vp) with
            | Some x -> Ok x
            | None ->
              Error
                (Format.asprintf "non-numeric value %a at position %d"
                   R.Value.pp (R.Tuple.get t vp) vp))
  in
  let groups : (R.Value.t, acc) Hashtbl.t = Hashtbl.create 16 in
  let* () =
    R.Relation.fold
      (fun t acc_result ->
        let* () = acc_result in
        let* x = get_value t in
        let ancestors =
          Dim_instance.rollup di (R.Tuple.get t group_position) ~to_category
        in
        List.iter
          (fun g ->
            let cell =
              match Hashtbl.find_opt groups g with
              | Some c -> c
              | None ->
                let c =
                  { total = 0.0; count = 0; vmin = infinity; vmax = neg_infinity }
                in
                Hashtbl.add groups g c;
                c
            in
            cell.total <- cell.total +. x;
            cell.count <- cell.count + 1;
            cell.vmin <- Float.min cell.vmin x;
            cell.vmax <- Float.max cell.vmax x)
          ancestors;
        Ok ())
      relation (Ok ())
  in
  let rows =
    Hashtbl.fold
      (fun g cell acc ->
        let value =
          match op with
          | Sum -> cell.total
          | Count -> float_of_int cell.count
          | Avg -> cell.total /. float_of_int cell.count
          | Min -> cell.vmin
          | Max -> cell.vmax
        in
        { group = g; value; tuples = cell.count } :: acc)
      groups []
    |> List.sort (fun a b -> R.Value.compare a.group b.group)
  in
  Ok rows

let pp_row ppf r =
  Format.fprintf ppf "%a: %g (%d tuples)" R.Value.pp r.group r.value r.tuples
