(** Dimension schemas of the Hurtado–Mendelzon multidimensional model.

    A dimension schema is a directed acyclic graph of {e categories};
    edges point from child category to parent category (the direction
    of roll-up).  The distinguished top category [All] is added
    automatically and every sink category is connected to it, so every
    member can roll all the way up (as in the HM model).

    Example (the paper's Fig. 1):
    {v
      Hospital:  Ward → Unit → Institution → All
      Time:      Day → Month → Year → All
    v} *)

type t

val all : string
(** The name of the top category, ["All"]. *)

val make : name:string -> edges:(string * string) list -> t
(** [make ~name ~edges] with edges [(child, parent)].
    Categories are collected from the edges; sinks are linked to
    [All].
    @raise Invalid_argument if the graph has a directed cycle, an edge
    is a self-loop, or [All] is used as a child. *)

val linear : name:string -> string list -> t
(** [linear ~name [c1; c2; ...; cn]] builds the chain
    [c1 → c2 → ... → cn → All] — the common case. *)

val name : t -> string

val categories : t -> string list
(** All categories including [All], bottom-up by level then name. *)

val mem_category : t -> string -> bool

val parents : t -> string -> string list
(** Immediate parent categories. @raise Not_found on unknown. *)

val children : t -> string -> string list

val ancestors : t -> string -> string list
(** Proper ancestors, transitively (includes [All] except for [All]). *)

val descendants : t -> string -> string list

val bottoms : t -> string list
(** Categories with no children (base categories). *)

val level : t -> string -> int
(** Length of the longest path from a bottom category (bottoms are 0,
    [All] is maximal). @raise Not_found on unknown. *)

val edges : t -> (string * string) list
(** All (child, parent) edges including those into [All], sorted. *)

val is_ancestor : t -> ancestor:string -> string -> bool
(** [is_ancestor t ~ancestor c]: does [c] roll up to [ancestor]?
    (proper ancestry; a category is not its own ancestor) *)

val paths : t -> source:string -> target:string -> string list list
(** All directed category paths from [source] up to [target], each
    given as the list of visited categories (inclusive). *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering of the category DAG (used by the Figure 1
    report). *)

val to_dot : t -> string
(** Graphviz rendering of the category DAG (roll-up arrows child →
    parent) as a standalone [digraph]. *)

val dot_cluster : t -> string
(** The same rendering as a [subgraph cluster_...] fragment, for
    embedding into a larger graph ({!Md_schema.to_dot}). *)
