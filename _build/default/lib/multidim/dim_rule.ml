open Mdqa_datalog

type navigation = Upward | Downward | Both | Static

type form = Form4 | Form10

type info = {
  tgd : Tgd.t;
  form : form;
  navigation : navigation;
  dimensions : string list;
}

type atom_class =
  | Rel_atom  (* categorical relation *)
  | Pc_atom of string * string * string  (* dimension, parent, child *)
  | Cat_atom of string * string  (* dimension, category *)

let classify_atom schema a =
  let pred = Atom.pred a in
  match Md_schema.relation schema pred with
  | Some _ -> Ok Rel_atom
  | None -> (
    match Md_schema.parent_child_of_pred schema pred with
    | Some (d, p, c) -> Ok (Pc_atom (d, p, c))
    | None -> (
      match Md_schema.category_of_pred schema pred with
      | Some (d, c) -> Ok (Cat_atom (d, c))
      | None -> Error (Printf.sprintf "unknown predicate %s" pred)))

let is_categorical_position schema pred i =
  match Md_schema.position_kind schema pred i with
  | Some (Md_schema.Category_pos _) -> true
  | Some Md_schema.Plain_pos | None -> false

(* Variables occurring in at least two distinct body atoms. *)
let shared_body_vars (tgd : Tgd.t) =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i a ->
      Term.Var_set.iter
        (fun v ->
          let atoms =
            Option.value ~default:[] (Hashtbl.find_opt tbl v)
          in
          if not (List.mem i atoms) then Hashtbl.replace tbl v (i :: atoms))
        (Atom.vars a))
    tgd.Tgd.body;
  Hashtbl.fold
    (fun v atoms acc ->
      if List.length atoms >= 2 then Term.Var_set.add v acc else acc)
    tbl Term.Var_set.empty

(* Positions of a variable across a list of atoms, with predicate. *)
let var_occurrences atoms v =
  List.concat_map
    (fun a -> List.map (fun i -> (a, i)) (Atom.var_positions a v))
    atoms

(* Head categorical positions grouped by dimension: (dim, category). *)
let categorical_categories schema atoms =
  List.concat_map
    (fun a ->
      List.mapi (fun i _ -> i) (Atom.args a)
      |> List.filter_map (fun i ->
             match Md_schema.position_kind schema (Atom.pred a) i with
             | Some (Md_schema.Category_pos { dimension; category }) ->
               Some (dimension, category)
             | _ -> None))
    atoms

let level_of schema (dim, cat) =
  match Md_schema.dimension schema dim with
  | Some d -> Dim_schema.level d cat
  | None -> 0

let analyze schema (tgd : Tgd.t) =
  let ( let* ) = Result.bind in
  (* Classify every atom. *)
  let classify atoms =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* c = classify_atom schema a in
        Ok ((a, c) :: acc))
      (Ok []) atoms
    |> Result.map List.rev
  in
  let* body = classify tgd.Tgd.body in
  let* head = classify tgd.Tgd.head in
  let head_rel_atoms =
    List.filter_map (fun (a, c) -> if c = Rel_atom then Some a else None) head
  in
  let head_pc_atoms =
    List.filter_map
      (fun (a, c) ->
        match c with Pc_atom (d, p, ch) -> Some (a, (d, p, ch)) | _ -> None)
      head
  in
  let body_rel_atoms =
    List.filter_map (fun (a, c) -> if c = Rel_atom then Some a else None) body
  in
  let body_pc_atoms =
    List.filter_map
      (fun (a, c) ->
        match c with Pc_atom (d, p, ch) -> Some (a, (d, p, ch)) | _ -> None)
      body
  in
  let* () =
    if head_rel_atoms = [] then
      Error "head contains no categorical relation atom"
    else Ok ()
  in
  let* () =
    if body_rel_atoms = [] then
      Error "body contains no categorical relation atom"
    else Ok ()
  in
  (* Existential variables and the kinds of their head positions. *)
  let ex = Tgd.existential_vars tgd in
  let ex_categorical =
    Term.Var_set.filter
      (fun z ->
        List.exists
          (fun (a, i) -> is_categorical_position schema (Atom.pred a) i)
          (var_occurrences tgd.Tgd.head z))
      ex
  in
  let form =
    if head_pc_atoms <> [] || not (Term.Var_set.is_empty ex_categorical) then
      Form10
    else Form4
  in
  (* Side conditions. *)
  let* () =
    match form with
    | Form4 ->
      (* shared body variables only at categorical positions *)
      let bad =
        Term.Var_set.filter
          (fun v ->
            List.exists
              (fun (a, i) ->
                not (is_categorical_position schema (Atom.pred a) i))
              (var_occurrences tgd.Tgd.body v))
          (shared_body_vars tgd)
      in
      if Term.Var_set.is_empty bad then Ok ()
      else
        Error
          (Printf.sprintf
             "form (4): shared body variable %s occurs at a non-categorical \
              position"
             (Term.Var_set.min_elt bad))
    | Form10 ->
      (* body categorical levels must dominate head categorical levels *)
      let body_cats = categorical_categories schema body_rel_atoms in
      let head_cats = categorical_categories schema head_rel_atoms in
      let ok =
        List.for_all
          (fun (d, ch) ->
            List.exists
              (fun (d', cb) ->
                String.equal d d'
                && level_of schema (d', cb) >= level_of schema (d, ch))
              body_cats)
          head_cats
      in
      if ok then Ok ()
      else
        Error
          "form (10): a head categorical attribute is at a higher level than \
           every body attribute of its dimension"
  in
  (* Navigation direction.  A parent-child atom participates in upward
     navigation when its child end is (transitively) supplied by a body
     categorical-relation atom and its parent end (transitively) flows
     into the head — and symmetrically for downward.  Transitivity
     matters: a rule may chain several parent-child atoms to climb more
     than one level (Cell → Tower → Region). *)
  let head_vars = Tgd.head_vars tgd in
  let rel_vars =
    List.fold_left
      (fun acc a -> Term.Var_set.union acc (Atom.vars a))
      Term.Var_set.empty body_rel_atoms
  in
  (* pc edges as (parent var, child var, dimension) when both are vars *)
  let pc_edges =
    List.filter_map
      (fun (a, (d, _p, _c)) ->
        match Atom.args a with
        | [ Term.Var vp; Term.Var vc ] -> Some (vp, vc, d)
        | _ -> None)
      body_pc_atoms
  in
  (* closure of [start] under [step : edge -> (src, dst) option] *)
  let closure start step =
    let rec go frontier seen =
      match frontier with
      | [] -> seen
      | x :: rest ->
        let next =
          List.filter_map
            (fun e ->
              match step e with
              | Some (src, dst)
                when String.equal src x && not (Term.Var_set.mem dst seen) ->
                Some dst
              | _ -> None)
            pc_edges
        in
        go (next @ rest)
          (List.fold_left (fun s y -> Term.Var_set.add y s) seen next)
    in
    go (Term.Var_set.elements start) start
  in
  (* upward: child -> parent; downward: parent -> child *)
  let fwd_up = closure rel_vars (fun (p, c, _) -> Some (c, p)) in
  let bwd_up = closure head_vars (fun (p, c, _) -> Some (p, c)) in
  let fwd_down = closure rel_vars (fun (p, c, _) -> Some (p, c)) in
  let bwd_down = closure head_vars (fun (p, c, _) -> Some (c, p)) in
  let directions = ref [] in
  List.iter
    (fun (vp, vc, d) ->
      if Term.Var_set.mem vc fwd_up && Term.Var_set.mem vp bwd_up then
        directions := (`Up, d) :: !directions;
      if Term.Var_set.mem vp fwd_down && Term.Var_set.mem vc bwd_down then
        directions := (`Down, d) :: !directions)
    pc_edges;
  (* Head parent-child atoms (form 10) always generate downward. *)
  List.iter (fun (_, (d, _, _)) -> directions := (`Down, d) :: !directions)
    head_pc_atoms;
  let ups = List.exists (fun (k, _) -> k = `Up) !directions in
  let downs = List.exists (fun (k, _) -> k = `Down) !directions in
  let navigation =
    match ups, downs with
    | true, true -> Both
    | true, false -> Upward
    | false, true -> Downward
    | false, false -> Static
  in
  let dimensions =
    List.sort_uniq String.compare (List.map snd !directions)
  in
  Ok { tgd; form; navigation; dimensions }

let is_upward_only schema tgds =
  List.for_all
    (fun tgd ->
      match analyze schema tgd with
      | Ok { form = Form4; navigation = Upward | Static; _ } -> true
      | _ -> false)
    tgds

let pp_info ppf i =
  let nav =
    match i.navigation with
    | Upward -> "upward"
    | Downward -> "downward"
    | Both -> "both directions"
    | Static -> "static"
  in
  Format.fprintf ppf "%s: form (%s), %s%s" i.tgd.Tgd.name
    (match i.form with Form4 -> "4" | Form10 -> "10")
    nav
    (match i.dimensions with
     | [] -> ""
     | ds -> " via " ^ String.concat ", " ds)
