(** Data-level dimensional navigation: roll-up and drill-down of
    categorical relations along a dimension (paper §I, Examples 1–2).

    These are the direct relational counterparts of dimensional rules
    (7) and (8): [rollup] re-expresses a categorical attribute at a
    higher category, [drilldown] at a lower one, multiplying tuples by
    the number of children and leaving unknown attributes as labeled
    nulls.  The test suite checks they agree with compiling the
    corresponding rule and chasing. *)

val rollup :
  Dim_instance.t ->
  relation:Mdqa_relational.Relation.t ->
  position:int ->
  to_category:string ->
  ?name:string ->
  unit ->
  Mdqa_relational.Relation.t
(** [rollup di ~relation ~position ~to_category ()] maps the member at
    [position] of every tuple to its ancestor(s) in [to_category]; one
    output tuple per ancestor (exactly one under strictness); tuples
    whose member has no ancestor there are dropped.  The attribute at
    [position] is re-linked to [to_category]. *)

val drilldown :
  Dim_instance.t ->
  relation:Mdqa_relational.Relation.t ->
  position:int ->
  to_category:string ->
  ?null_positions:int list ->
  ?fresh:Mdqa_relational.Value.Fresh.gen ->
  ?name:string ->
  unit ->
  Mdqa_relational.Relation.t
(** One output tuple per descendant of the member at [position];
    attributes listed in [null_positions] are replaced by a fresh
    labeled null per output tuple (the incomplete lower-level data of
    rule (8)). *)
