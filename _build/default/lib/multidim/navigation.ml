module R = Mdqa_relational

let retarget_schema rel position to_category ~dimension ~name =
  let rs = R.Relation.schema rel in
  let attrs =
    List.mapi
      (fun i a ->
        if i = position then
          R.Attribute.categorical (R.Attribute.name a) ~dimension
            ~category:to_category
        else a)
      (R.Rel_schema.attributes rs)
  in
  R.Rel_schema.make (Option.value name ~default:(R.Rel_schema.name rs)) attrs

let navigate step di ~relation ~position ~to_category ?name ~transform () =
  let dimension = Dim_schema.name (Dim_instance.schema di) in
  let out =
    R.Relation.create
      (retarget_schema relation position to_category ~dimension ~name)
  in
  R.Relation.iter
    (fun tuple ->
      let member = R.Tuple.get tuple position in
      List.iter
        (fun target ->
          let t = R.Tuple.set tuple position target in
          ignore (R.Relation.add out (transform t)))
        (step di member ~to_category))
    relation;
  out

let rollup di ~relation ~position ~to_category ?name () =
  navigate Dim_instance.rollup di ~relation ~position ~to_category ?name
    ~transform:Fun.id ()

let drilldown di ~relation ~position ~to_category ?(null_positions = [])
    ?fresh ?name () =
  let fresh =
    match fresh with Some f -> f | None -> R.Value.Fresh.create ()
  in
  let transform t =
    List.fold_left
      (fun t i -> R.Tuple.set t i (R.Value.Fresh.next fresh))
      t null_positions
  in
  navigate Dim_instance.drilldown di ~relation ~position ~to_category ?name
    ~transform ()
