lib/multidim/dim_schema.ml: Buffer Format Hashtbl Int List Map Option Printf Set String
