lib/multidim/dim_instance.mli: Dim_schema Format Mdqa_relational
