lib/multidim/dim_schema.mli: Format
