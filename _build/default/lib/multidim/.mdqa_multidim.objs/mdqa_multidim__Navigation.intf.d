lib/multidim/navigation.mli: Dim_instance Mdqa_relational
