lib/multidim/dim_rule.mli: Format Md_schema Mdqa_datalog
