lib/multidim/aggregate.mli: Dim_instance Format Mdqa_relational
