lib/multidim/summarizability.mli: Dim_instance Format Mdqa_relational
