lib/multidim/navigation.ml: Dim_instance Dim_schema Fun List Mdqa_relational Option
