lib/multidim/dim_rule.ml: Atom Dim_schema Format Hashtbl List Md_schema Mdqa_datalog Option Printf Result String Term Tgd
