lib/multidim/aggregate.ml: Dim_instance Dim_schema Float Format Hashtbl List Mdqa_relational Printf Result String Summarizability
