lib/multidim/md_ontology.ml: Chase Classes Dim_instance Dim_rule Dim_schema Egd Format List Md_schema Mdqa_datalog Mdqa_relational Nc Printf Program Proof Query Rewrite Separability String Tgd
