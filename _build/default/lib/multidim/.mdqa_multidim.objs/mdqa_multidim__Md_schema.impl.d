lib/multidim/md_schema.ml: Buffer Char Dim_schema Format Hashtbl List Mdqa_relational Printf String
