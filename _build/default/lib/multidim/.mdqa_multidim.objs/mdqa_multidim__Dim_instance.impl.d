lib/multidim/dim_instance.ml: Dim_schema Format List Map Mdqa_relational Option Printf Set String
