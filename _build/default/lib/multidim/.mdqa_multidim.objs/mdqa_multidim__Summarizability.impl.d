lib/multidim/summarizability.ml: Dim_instance Dim_schema Format List Mdqa_relational String
