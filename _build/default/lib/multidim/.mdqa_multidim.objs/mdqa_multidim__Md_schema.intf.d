lib/multidim/md_schema.mli: Dim_schema Format Mdqa_relational
