lib/multidim/md_ontology.mli: Dim_instance Dim_rule Format Md_schema Mdqa_datalog Mdqa_relational
