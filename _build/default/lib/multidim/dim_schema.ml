module Smap = Map.Make (String)
module Sset = Set.Make (String)

let all = "All"

type t = {
  name : string;
  cats : Sset.t;
  up : Sset.t Smap.t;  (* child -> parents *)
  down : Sset.t Smap.t;  (* parent -> children *)
}

let find_set m k = Option.value ~default:Sset.empty (Smap.find_opt k m)

let add_edge (up, down) (child, parent) =
  ( Smap.add child (Sset.add parent (find_set up child)) up,
    Smap.add parent (Sset.add child (find_set down parent)) down )

let check_acyclic name up cats =
  let colour = Hashtbl.create 16 in
  let rec visit c =
    match Hashtbl.find_opt colour c with
    | Some `Done -> ()
    | Some `Active ->
      invalid_arg
        (Printf.sprintf "Dim_schema %s: cycle through category %s" name c)
    | None ->
      Hashtbl.add colour c `Active;
      Sset.iter visit (find_set up c);
      Hashtbl.replace colour c `Done
  in
  Sset.iter visit cats

let make ~name ~edges =
  if edges = [] then invalid_arg "Dim_schema.make: no edges";
  List.iter
    (fun (c, p) ->
      if String.equal c p then
        invalid_arg
          (Printf.sprintf "Dim_schema %s: self-loop on %s" name c);
      if String.equal c all then
        invalid_arg
          (Printf.sprintf "Dim_schema %s: %s cannot be a child" name all))
    edges;
  let up, down = List.fold_left add_edge (Smap.empty, Smap.empty) edges in
  let cats =
    List.fold_left
      (fun s (c, p) -> Sset.add c (Sset.add p s))
      Sset.empty edges
  in
  (* Connect sink categories (other than All) to All. *)
  let sinks =
    Sset.filter
      (fun c -> (not (String.equal c all)) && Sset.is_empty (find_set up c))
      cats
  in
  let up, down =
    Sset.fold (fun c acc -> add_edge acc (c, all)) sinks (up, down)
  in
  let cats = Sset.add all cats in
  check_acyclic name up cats;
  { name; cats; up; down }

let linear ~name cats =
  match cats with
  | [] -> invalid_arg "Dim_schema.linear: empty category list"
  | [ c ] -> make ~name ~edges:[ (c, all) ]
  | _ ->
    let rec chain = function
      | a :: (b :: _ as rest) -> (a, b) :: chain rest
      | _ -> []
    in
    make ~name ~edges:(chain cats)

let name t = t.name
let mem_category t c = Sset.mem c t.cats

let check t c =
  if not (mem_category t c) then
    raise Not_found

let parents t c =
  check t c;
  Sset.elements (find_set t.up c)

let children t c =
  check t c;
  Sset.elements (find_set t.down c)

let transitive step t c =
  check t c;
  let rec go frontier acc =
    match frontier with
    | [] -> acc
    | x :: rest ->
      let next =
        List.filter (fun y -> not (Sset.mem y acc)) (step t x)
      in
      go (next @ rest) (List.fold_left (fun s y -> Sset.add y s) acc next)
  in
  Sset.elements (go [ c ] Sset.empty)

let ancestors = transitive parents
let descendants = transitive children

let bottoms t =
  Sset.elements (Sset.filter (fun c -> Sset.is_empty (find_set t.down c)) t.cats)

let level t c =
  check t c;
  let memo = Hashtbl.create 16 in
  let rec go c =
    match Hashtbl.find_opt memo c with
    | Some l -> l
    | None ->
      let l =
        match children t c with
        | [] -> 0
        | kids -> 1 + List.fold_left (fun m k -> max m (go k)) 0 kids
      in
      Hashtbl.add memo c l;
      l
  in
  go c

let categories t =
  Sset.elements t.cats
  |> List.sort (fun a b ->
         let c = Int.compare (level t a) (level t b) in
         if c <> 0 then c else String.compare a b)

let edges t =
  Smap.fold
    (fun child ps acc -> Sset.fold (fun p acc -> (child, p) :: acc) ps acc)
    t.up []
  |> List.sort compare

let is_ancestor t ~ancestor c = List.mem ancestor (ancestors t c)

let paths t ~source ~target =
  check t source;
  check t target;
  let rec go c =
    if String.equal c target then [ [ c ] ]
    else
      List.concat_map (fun p -> List.map (fun path -> c :: path) (go p))
        (parents t c)
  in
  go source

let dot_cluster t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "  subgraph cluster_%s {\n    label=\"%s\";\n" t.name
       t.name);
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s.%s\" [label=\"%s\", shape=box];\n" t.name c
           c))
    (categories t);
  List.iter
    (fun (child, parent) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s.%s\" -> \"%s.%s\";\n" t.name child t.name
           parent))
    (edges t);
  Buffer.add_string buf "  }\n";
  Buffer.contents buf

let to_dot t = "digraph dimension {\n  rankdir=BT;\n" ^ dot_cluster t ^ "}\n"

let pp ppf t =
  Format.fprintf ppf "@[<v>dimension %s:" t.name;
  List.iter
    (fun c ->
      let ps = List.filter (fun p -> p <> all) (parents t c) in
      let arrow =
        if ps = [] then if c = all then "" else " -> All"
        else " -> " ^ String.concat ", " ps
      in
      if c <> all then
        Format.fprintf ppf "@,  %s (level %d)%s" c (level t c) arrow)
    (categories t);
  Format.fprintf ppf "@]"
