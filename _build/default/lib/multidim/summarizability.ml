module Value = Mdqa_relational.Value

type violation =
  | Non_strict of {
      member : Value.t;
      category : string;
      ancestor_category : string;
      ancestors : Value.t list;
    }
  | Non_covering of {
      member : Value.t;
      category : string;
      parent_category : string;
    }

type report = {
  strict : bool;
  homogeneous : bool;
  violations : violation list;
}

let diagnose inst =
  let schema = Dim_instance.schema inst in
  let violations = ref [] in
  List.iter
    (fun cat ->
      if cat <> Dim_schema.all then
        List.iter
          (fun m ->
            List.iter
              (fun anc ->
                let ups = Dim_instance.rollup inst m ~to_category:anc in
                if List.length ups > 1 then
                  violations :=
                    Non_strict
                      { member = m;
                        category = cat;
                        ancestor_category = anc;
                        ancestors = ups }
                    :: !violations)
              (Dim_schema.ancestors schema cat);
            List.iter
              (fun pcat ->
                let covered =
                  List.exists
                    (fun p -> Dim_instance.category_of inst p = Some pcat)
                    (Dim_instance.member_parents inst m)
                in
                if not covered then
                  violations :=
                    Non_covering
                      { member = m; category = cat; parent_category = pcat }
                    :: !violations)
              (Dim_schema.parents schema cat))
          (Dim_instance.members inst cat))
    (Dim_schema.categories schema);
  let violations = List.rev !violations in
  { strict =
      not (List.exists (function Non_strict _ -> true | _ -> false) violations);
    homogeneous =
      not
        (List.exists (function Non_covering _ -> true | _ -> false) violations);
    violations }

let summarizable inst ~from_category ~to_category =
  let schema = Dim_instance.schema inst in
  Dim_schema.is_ancestor schema ~ancestor:to_category from_category
  && List.for_all
       (fun m ->
         List.length (Dim_instance.rollup inst m ~to_category) = 1)
       (Dim_instance.members inst from_category)

let pp_violation ppf = function
  | Non_strict { member; category; ancestor_category; ancestors } ->
    Format.fprintf ppf "non-strict: %a (%s) rolls up to {%s} in %s"
      Value.pp member category
      (String.concat ", " (List.map Value.to_string ancestors))
      ancestor_category
  | Non_covering { member; category; parent_category } ->
    Format.fprintf ppf "non-covering: %a (%s) has no parent in %s" Value.pp
      member category parent_category

let pp_report ppf r =
  Format.fprintf ppf "@[<v>strict: %b, homogeneous: %b" r.strict r.homogeneous;
  List.iter (fun v -> Format.fprintf ppf "@,  %a" pp_violation v) r.violations;
  Format.fprintf ppf "@]"
