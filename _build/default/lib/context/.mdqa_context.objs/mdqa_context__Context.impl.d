lib/context/context.ml: Atom Chase Explain Format Hashtbl List Mdqa_datalog Mdqa_multidim Mdqa_relational Printf Program Query String Tgd
