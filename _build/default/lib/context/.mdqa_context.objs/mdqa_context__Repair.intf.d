lib/context/repair.mli: Context Format Mdqa_datalog Mdqa_relational
