lib/context/md_parser.ml: Atom Context Dim_instance Dim_rule Dim_schema Egd Fun Lexer List Md_ontology Md_schema Mdqa_datalog Mdqa_multidim Mdqa_relational Nc Option Parser Printf Query String Tgd
