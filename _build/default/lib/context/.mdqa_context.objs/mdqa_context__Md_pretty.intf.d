lib/context/md_pretty.mli: Context Mdqa_datalog Mdqa_multidim Mdqa_relational
