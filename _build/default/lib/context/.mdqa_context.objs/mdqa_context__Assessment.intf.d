lib/context/assessment.mli: Context Format Mdqa_relational
