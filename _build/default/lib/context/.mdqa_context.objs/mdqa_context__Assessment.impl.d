lib/context/assessment.ml: Context Format List Mdqa_relational
