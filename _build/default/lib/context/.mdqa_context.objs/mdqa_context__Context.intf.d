lib/context/context.mli: Format Mdqa_datalog Mdqa_multidim Mdqa_relational
