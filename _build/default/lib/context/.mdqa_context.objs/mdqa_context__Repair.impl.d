lib/context/repair.ml: Atom Context Egd Eval Format Hashtbl List Mdqa_datalog Mdqa_multidim Mdqa_relational Nc Printf Program Result String Subst Term
