lib/context/md_parser.mli: Context Mdqa_datalog Mdqa_multidim Mdqa_relational
