lib/context/md_pretty.ml: Atom Buffer Context Dim_instance Dim_schema Format List Md_ontology Md_schema Mdqa_datalog Mdqa_multidim Mdqa_relational Pretty Printf String
