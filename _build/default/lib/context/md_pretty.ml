open Mdqa_multidim
open Mdqa_datalog
module R = Mdqa_relational

(* A name can stay bare when it lexes back as a single identifier
   token; anything containing operator characters is quoted. *)
let bare_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '/' -> true
         | _ -> false)
       s

let q_name s =
  if bare_name s then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let dimension_block buf schema instance =
  let name = Dim_schema.name schema in
  Buffer.add_string buf (Printf.sprintf "dimension %s {\n" (q_name name));
  List.iter
    (fun (child, parent) ->
      if parent <> Dim_schema.all then
        Buffer.add_string buf
          (Printf.sprintf "  category %s -> %s.\n" (q_name child)
             (q_name parent)))
    (Dim_schema.edges schema);
  (* categories whose only parent is All still need declaring *)
  List.iter
    (fun c ->
      if
        c <> Dim_schema.all
        && Dim_schema.parents schema c = [ Dim_schema.all ]
        && Dim_schema.children schema c = []
      then Buffer.add_string buf (Printf.sprintf "  category %s.\n" (q_name c)))
    (Dim_schema.categories schema);
  List.iter
    (fun c ->
      if c <> Dim_schema.all then
        List.iter
          (fun m ->
            let mname = R.Value.to_string m in
            let mname =
              (* strip the quoting Value.to_string may add *)
              match m with R.Value.Sym s -> s | _ -> mname
            in
            let parents =
              List.filter_map
                (fun p ->
                  match p with
                  | R.Value.Sym "all" -> None
                  | R.Value.Sym s -> Some (q_name s)
                  | _ -> None)
                (Dim_instance.member_parents instance m)
            in
            if parents = [] then
              Buffer.add_string buf
                (Printf.sprintf "  member %s in %s.\n" (q_name mname)
                   (q_name c))
            else
              Buffer.add_string buf
                (Printf.sprintf "  member %s in %s -> %s.\n" (q_name mname)
                   (q_name c)
                   (String.concat ", " parents)))
          (Dim_instance.members instance c))
    (Dim_schema.categories schema);
  Buffer.add_string buf "}\n\n"

let relation_decl buf ~keyword schema =
  let attr a =
    match R.Attribute.kind a with
    | R.Attribute.Plain -> q_name (R.Attribute.name a)
    | R.Attribute.Categorical { dimension; category } ->
      Printf.sprintf "%s in %s.%s"
        (q_name (R.Attribute.name a))
        dimension category
  in
  Buffer.add_string buf
    (Printf.sprintf "%s %s(%s).\n" keyword
       (R.Rel_schema.name schema)
       (String.concat ", " (List.map attr (R.Rel_schema.attributes schema))))

let facts_of_instance buf inst =
  List.iter
    (fun rel ->
      R.Relation.iter
        (fun t ->
          Buffer.add_string buf
            (Format.asprintf "%a.\n" Pretty.atom
               (Atom.of_fact (R.Relation.name rel) t)))
        rel)
    (R.Instance.relations inst)

let ontology_body buf (m : Md_ontology.t) =
  let schema = m.Md_ontology.schema in
  List.iter
    (fun d ->
      let inst =
        List.find
          (fun i ->
            String.equal
              (Dim_schema.name (Dim_instance.schema i))
              (Dim_schema.name d))
          m.Md_ontology.dim_instances
      in
      dimension_block buf d inst)
    (Md_schema.dimensions schema);
  List.iter (relation_decl buf ~keyword:"relation") (Md_schema.relations schema);
  Buffer.add_string buf "\n";
  facts_of_instance buf m.Md_ontology.data;
  Buffer.add_string buf "\n";
  List.iter
    (fun tgd -> Buffer.add_string buf (Format.asprintf "%a\n" Pretty.tgd tgd))
    m.Md_ontology.rules;
  List.iter
    (fun egd -> Buffer.add_string buf (Format.asprintf "%a\n" Pretty.egd egd))
    m.Md_ontology.egds;
  List.iter
    (fun nc -> Buffer.add_string buf (Format.asprintf "%a\n" Pretty.nc nc))
    m.Md_ontology.ncs

let ontology_to_string m =
  let buf = Buffer.create 4096 in
  ontology_body buf m;
  Buffer.contents buf

let context_to_string ?source ?(queries = []) (ctx : Context.t) =
  let buf = Buffer.create 4096 in
  ontology_body buf ctx.Context.ontology;
  Buffer.add_string buf "\n";
  (match source with
   | Some src ->
     List.iter
       (fun rel ->
         relation_decl buf ~keyword:"source" (R.Relation.schema rel))
       (R.Instance.relations src)
   | None -> ());
  List.iter
    (fun rel -> relation_decl buf ~keyword:"external" (R.Relation.schema rel))
    ctx.Context.externals;
  List.iter
    (fun (mp : Context.mapping) ->
      Buffer.add_string buf
        (Printf.sprintf "map %s -> %s.\n" mp.Context.source mp.Context.target))
    ctx.Context.mappings;
  List.iter
    (fun (orig, qp) ->
      Buffer.add_string buf (Printf.sprintf "quality %s -> %s.\n" orig qp))
    ctx.Context.quality_versions;
  Buffer.add_string buf "\n";
  (match source with
   | Some src -> facts_of_instance buf src
   | None -> ());
  List.iter
    (fun rel ->
      R.Relation.iter
        (fun t ->
          Buffer.add_string buf
            (Format.asprintf "%a.\n" Mdqa_datalog.Pretty.atom
               (Mdqa_datalog.Atom.of_fact (R.Relation.name rel) t)))
        rel)
    ctx.Context.externals;
  Buffer.add_string buf "\n";
  List.iter
    (fun tgd -> Buffer.add_string buf (Format.asprintf "%a\n" Pretty.tgd tgd))
    ctx.Context.rules;
  List.iter
    (fun q -> Buffer.add_string buf (Format.asprintf "%a\n" Pretty.query q))
    queries;
  Buffer.contents buf
