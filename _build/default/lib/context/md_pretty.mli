(** Serialization of multidimensional contexts back to the [.mdq]
    format of {!Md_parser}.

    [Md_parser.parse_string (Md_pretty.to_string ...)] reconstructs a
    structurally equal context (rule names aside) — round-trip tested.
    Useful for exporting programmatically-built ontologies (e.g. the
    synthetic generators) into files the CLI can run. *)

val ontology_to_string : Mdqa_multidim.Md_ontology.t -> string
(** Dimensions, categorical relations, ontology data facts, dimensional
    rules, EGDs and constraints. *)

val context_to_string :
  ?source:Mdqa_relational.Instance.t ->
  ?queries:Mdqa_datalog.Query.t list ->
  Context.t ->
  string
(** The full [.mdq] document: the ontology plus [source] schema
    declarations and facts, [map]/[quality] wiring, contextual rules
    and queries. *)
