open Mdqa_datalog
open Mdqa_multidim
module R = Mdqa_relational
module Raw = Parser.Raw

type parsed = {
  ontology : Md_ontology.t;
  context : Context.t;
  source : R.Instance.t;
  queries : Query.t list;
}

exception Error of { line : int; message : string }

(* Intermediate, pre-assembly representation of the declarations. *)
type dim_decl = {
  dim_name : string;
  mutable cat_edges : (string * string) list;  (* child, parent *)
  mutable standalone : string list;
  mutable dmembers : (string * string) list;  (* member, category *)
  mutable links : (string * string) list;  (* child member, parent member *)
}

type decls = {
  mutable dims : dim_decl list;
  mutable relations : R.Rel_schema.t list;
  mutable sources : R.Rel_schema.t list;
  mutable externals : R.Rel_schema.t list;
  mutable maps : (string * string) list;
  mutable qualities : (string * string) list;
  mutable facts : Atom.t list;
  mutable tgds : Tgd.t list;
  mutable egds : Egd.t list;
  mutable ncs : Nc.t list;
  mutable queries : Query.t list;
}

let fail st message = Raw.error st message

(* a name usable as a category / member / dimension *)
let name_token st what =
  match Raw.peek st with
  | Lexer.VAR s, _ | Lexer.IDENT s, _ | Lexer.STRING s, _ ->
    Raw.advance st;
    s
  | t, _ ->
    fail st
      (Printf.sprintf "expected %s, found %s" what (Lexer.token_to_string t))

let dotted_category st =
  let s = name_token st "Dimension.Category" in
  match String.split_on_char '.' s with
  | [ d; c ] when d <> "" && c <> "" -> (d, c)
  | _ ->
    fail st
      (Printf.sprintf "expected Dimension.Category, found %S" s)

let comma_list st parse_one =
  let rec go acc =
    let x = parse_one st in
    match Raw.peek st with
    | Lexer.COMMA, _ ->
      Raw.advance st;
      go (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  go []

let keyword st = function
  | Lexer.IDENT k -> (
    match k with
    | "dimension" | "relation" | "source" | "external" | "map" | "quality"
    | "category" | "member" ->
      (* a declaration only when not immediately a predicate call *)
      (match Raw.peek2 st with Lexer.LPAREN -> None | _ -> Some k)
    | _ -> None)
  | _ -> None

let parse_dimension st decls =
  Raw.advance st (* 'dimension' *);
  let dim_name = name_token st "a dimension name" in
  Raw.expect st Lexer.LBRACE "'{'";
  let d =
    { dim_name; cat_edges = []; standalone = []; dmembers = []; links = [] }
  in
  let rec body () =
    match Raw.peek st with
    | Lexer.RBRACE, _ -> Raw.advance st
    | Lexer.IDENT "category", _ ->
      Raw.advance st;
      let child = name_token st "a category name" in
      (match Raw.peek st with
       | Lexer.ARROW, _ ->
         Raw.advance st;
         let parents = comma_list st (fun st -> name_token st "a category") in
         d.cat_edges <- d.cat_edges @ List.map (fun p -> (child, p)) parents
       | _ -> d.standalone <- child :: d.standalone);
      Raw.expect st Lexer.PERIOD "'.'";
      body ()
    | Lexer.IDENT "member", _ ->
      Raw.advance st;
      let m = name_token st "a member name" in
      (match Raw.peek st with
       | Lexer.IDENT "in", _ -> Raw.advance st
       | t, _ ->
         fail st
           (Printf.sprintf "expected 'in', found %s"
              (Lexer.token_to_string t)));
      let cat = name_token st "a category" in
      d.dmembers <- (m, cat) :: d.dmembers;
      (match Raw.peek st with
       | Lexer.ARROW, _ ->
         Raw.advance st;
         let parents = comma_list st (fun st -> name_token st "a member") in
         d.links <- d.links @ List.map (fun p -> (m, p)) parents
       | _ -> ());
      Raw.expect st Lexer.PERIOD "'.'";
      body ()
    | t, _ ->
      fail st
        (Printf.sprintf
           "expected 'category', 'member' or '}' in dimension body, found %s"
           (Lexer.token_to_string t))
  in
  body ();
  decls.dims <- decls.dims @ [ d ]

let parse_relation st decls ~kind =
  Raw.advance st (* 'relation' | 'source' | 'external' *);
  let name =
    match Raw.peek st with
    | Lexer.IDENT n, _ ->
      Raw.advance st;
      n
    | t, _ ->
      fail st
        (Printf.sprintf "expected a relation name, found %s"
           (Lexer.token_to_string t))
  in
  Raw.expect st Lexer.LPAREN "'('";
  let parse_attr st =
    match Raw.peek st with
    | Lexer.IDENT a, _ ->
      Raw.advance st;
      (match Raw.peek st with
       | Lexer.IDENT "in", _ ->
         Raw.advance st;
         let dimension, category = dotted_category st in
         R.Attribute.categorical a ~dimension ~category
       | _ -> R.Attribute.plain a)
    | t, _ ->
      fail st
        (Printf.sprintf "expected an attribute name, found %s"
           (Lexer.token_to_string t))
  in
  let attrs = comma_list st parse_attr in
  Raw.expect st Lexer.RPAREN "')'";
  Raw.expect st Lexer.PERIOD "'.'";
  let schema =
    try R.Rel_schema.make name attrs
    with Invalid_argument m -> fail st m
  in
  match kind with
  | `Source -> decls.sources <- decls.sources @ [ schema ]
  | `External -> decls.externals <- decls.externals @ [ schema ]
  | `Relation -> decls.relations <- decls.relations @ [ schema ]

let parse_wiring st decls ~quality =
  Raw.advance st (* 'map' | 'quality' *);
  let from = name_token st "a relation name" in
  Raw.expect st Lexer.ARROW "'->'";
  let target = name_token st "a predicate name" in
  Raw.expect st Lexer.PERIOD "'.'";
  if quality then decls.qualities <- decls.qualities @ [ (from, target) ]
  else decls.maps <- decls.maps @ [ (from, target) ]

let collect st =
  let decls =
    { dims = []; relations = []; sources = []; externals = []; maps = [];
      qualities = []; facts = []; tgds = []; egds = []; ncs = [];
      queries = [] }
  in
  let rec go () =
    if not (Raw.at_eof st) then begin
      (match keyword st (fst (Raw.peek st)) with
       | Some "dimension" -> parse_dimension st decls
       | Some "relation" -> parse_relation st decls ~kind:`Relation
       | Some "source" -> parse_relation st decls ~kind:`Source
       | Some "external" -> parse_relation st decls ~kind:`External
       | Some "map" -> parse_wiring st decls ~quality:false
       | Some "quality" -> parse_wiring st decls ~quality:true
       | Some k ->
         fail st (Printf.sprintf "'%s' is only allowed inside a dimension" k)
       | None -> (
         match Raw.statement st with
         | Raw.S_fact f -> decls.facts <- decls.facts @ [ f ]
         | Raw.S_tgd t -> decls.tgds <- decls.tgds @ [ t ]
         | Raw.S_egd e -> decls.egds <- decls.egds @ [ e ]
         | Raw.S_nc n -> decls.ncs <- decls.ncs @ [ n ]
         | Raw.S_query q -> decls.queries <- decls.queries @ [ q ]));
      go ()
    end
  in
  go ();
  decls

let build decls ~(fail_at : string -> unit) =
  (* [fail_at] always raises; the [assert false] is for typing only *)
  let fail_at m =
    fail_at m;
    assert false
  in
  let wrap : 'a. (unit -> 'a) -> 'a =
    fun f -> try f () with Invalid_argument m -> fail_at m
  in
  (* Dimensions. *)
  let dim_schemas_and_instances =
    List.map
      (fun d ->
        wrap (fun () ->
            let edges =
              d.cat_edges
              @ List.filter_map
                  (fun c ->
                    if
                      List.exists (fun (a, b) -> a = c || b = c) d.cat_edges
                    then None
                    else Some (c, Dim_schema.all))
                  (List.rev d.standalone)
            in
            let schema = Dim_schema.make ~name:d.dim_name ~edges in
            let members_by_cat =
              List.fold_left
                (fun acc (m, cat) ->
                  let cur =
                    Option.value ~default:[] (List.assoc_opt cat acc)
                  in
                  (cat, m :: cur) :: List.remove_assoc cat acc)
                [] d.dmembers
            in
            let instance =
              Dim_instance.make schema ~members:members_by_cat
                ~links:(List.rev d.links)
            in
            (schema, instance)))
      decls.dims
  in
  let dim_schemas = List.map fst dim_schemas_and_instances in
  let dim_instances = List.map snd dim_schemas_and_instances in
  let md_schema =
    wrap (fun () ->
        Md_schema.make ~dimensions:dim_schemas ~relations:decls.relations)
  in
  (* Known MD predicates: relations + generated category / parent-child
     predicates. *)
  let md_pred p =
    Md_schema.relation md_schema p <> None
    || Md_schema.category_of_pred md_schema p <> None
    || Md_schema.parent_child_of_pred md_schema p <> None
  in
  let relation_named n =
    List.find_opt (fun s -> R.Rel_schema.name s = n) decls.relations
  in
  let source_named n =
    List.find_opt (fun s -> R.Rel_schema.name s = n) decls.sources
  in
  let external_named n =
    List.find_opt (fun s -> R.Rel_schema.name s = n) decls.externals
  in
  (* Facts. *)
  let data = R.Instance.create () in
  let source = R.Instance.create () in
  let externals = R.Instance.create () in
  List.iter (fun s -> ignore (R.Instance.declare source s)) decls.sources;
  List.iter (fun s -> ignore (R.Instance.declare externals s)) decls.externals;
  List.iter
    (fun f ->
      let p = Atom.pred f in
      let check_arity schema =
        if R.Rel_schema.arity schema <> Atom.arity f then
          fail_at (Printf.sprintf "fact arity mismatch for %s" p)
      in
      match relation_named p, source_named p, external_named p with
      | Some schema, _, _ ->
        check_arity schema;
        ignore (R.Instance.declare data schema);
        ignore (R.Instance.add_tuple data p (Atom.to_tuple f))
      | None, Some schema, _ ->
        check_arity schema;
        ignore (R.Instance.add_tuple source p (Atom.to_tuple f))
      | None, None, Some schema ->
        check_arity schema;
        ignore (R.Instance.add_tuple externals p (Atom.to_tuple f))
      | None, None, None ->
        fail_at
          (Printf.sprintf
             "fact over undeclared predicate %s (declare it with 'relation', \
              'source' or 'external')"
             p))
    decls.facts;
  (* Rules: dimensional when every predicate is an MD predicate. *)
  let md_rules, ctx_rules =
    List.partition
      (fun (t : Tgd.t) ->
        List.for_all md_pred (Tgd.body_preds t @ Tgd.head_preds t))
      decls.tgds
  in
  List.iter
    (fun (t : Tgd.t) ->
      match Dim_rule.analyze md_schema t with
      | Ok _ -> ()
      | Error e ->
        fail_at (Printf.sprintf "dimensional rule %s: %s" t.Tgd.name e))
    md_rules;
  List.iter
    (fun (e : Egd.t) ->
      if not (List.for_all md_pred (List.map Atom.pred e.Egd.body)) then
        fail_at
          (Printf.sprintf "EGD %s mentions non-dimensional predicates"
             e.Egd.name))
    decls.egds;
  List.iter
    (fun (n : Nc.t) ->
      if not (List.for_all md_pred (List.map Atom.pred n.Nc.body)) then
        fail_at
          (Printf.sprintf "constraint %s mentions non-dimensional predicates"
             n.Nc.name))
    decls.ncs;
  let ontology =
    wrap (fun () ->
        Md_ontology.make ~schema:md_schema ~dim_instances ~data
          ~rules:md_rules ~egds:decls.egds ~ncs:decls.ncs ())
  in
  let context =
    wrap (fun () ->
        Context.make ~ontology
          ~mappings:
            (List.map
               (fun (s, t) -> { Context.source = s; target = t })
               decls.maps)
          ~rules:ctx_rules
          ~externals:(R.Instance.relations externals)
          ~quality_versions:decls.qualities ())
  in
  { ontology; context; source; queries = decls.queries }

let parse_string input =
  try
    let st = Raw.init input in
    let decls = collect st in
    let line = ref 0 in
    ignore !line;
    build decls ~fail_at:(fun m -> raise (Error { line = 0; message = m }))
  with Parser.Error { line; message } -> raise (Error { line; message })

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string (really_input_string ic n))
