module Instance = Mdqa_relational.Instance
module Rel_schema = Mdqa_relational.Rel_schema
module Tuple = Mdqa_relational.Tuple
module Value = Mdqa_relational.Value

(* Freeze a query: substitute each variable by a private constant that
   cannot occur in any real query (the prefix is non-printable). *)
let freeze_term = function
  | Term.Var v -> Term.Const (Value.sym ("\000fz:" ^ v))
  | Term.Const _ as t -> t

let freeze_atom a = Atom.make (Atom.pred a) (List.map freeze_term (Atom.args a))

let frozen_instance (q : Query.t) =
  let inst = Instance.create () in
  List.iter
    (fun a ->
      let fa = freeze_atom a in
      let schema =
        Rel_schema.of_names (Atom.pred fa)
          (List.init (Atom.arity fa) (Printf.sprintf "c%d"))
      in
      ignore (Instance.declare inst schema);
      ignore (Instance.add_tuple inst (Atom.pred fa) (Atom.to_tuple fa)))
    q.Query.body;
  inst

let frozen_head (q : Query.t) = List.map freeze_term q.Query.head

let is_frozen = function
  | Term.Const (Value.Sym s) ->
    String.length s >= 4 && String.sub s 0 4 = "\000fz:"
  | _ -> false

(* A comparison of [super], instantiated by the homomorphism, must be
   trivially true on real constants, or literally among [sub]'s frozen
   comparisons.  A frozen constant stands for an arbitrary value, so a
   comparison touching one is never evaluated. *)
let cmp_implied sub_cmps_frozen (c : Atom.Cmp.t) =
  let literal () =
    List.exists
      (fun (c' : Atom.Cmp.t) ->
        c.Atom.Cmp.op = c'.Atom.Cmp.op
        && Term.equal c.Atom.Cmp.lhs c'.Atom.Cmp.lhs
        && Term.equal c.Atom.Cmp.rhs c'.Atom.Cmp.rhs)
      sub_cmps_frozen
  in
  if is_frozen c.Atom.Cmp.lhs || is_frozen c.Atom.Cmp.rhs then literal ()
  else
    match Atom.Cmp.eval c with
    | Some b -> b
    | None -> literal ()

let contained ~(sub : Query.t) ~(super : Query.t) =
  List.length sub.Query.head = List.length super.Query.head
  && begin
    let inst = frozen_instance sub in
    let target_head = frozen_head sub in
    let sub_cmps_frozen =
      List.map
        (fun (c : Atom.Cmp.t) ->
          Atom.Cmp.make c.Atom.Cmp.op (freeze_term c.Atom.Cmp.lhs)
            (freeze_term c.Atom.Cmp.rhs))
        sub.Query.cmps
    in
    let found = ref false in
    let check s =
      if not !found then begin
        let head_ok =
          List.for_all2
            (fun h target -> Term.equal (Subst.walk s h) target)
            super.Query.head target_head
        in
        let cmps_ok =
          List.for_all
            (fun c -> cmp_implied sub_cmps_frozen (Subst.apply_cmp s c))
            super.Query.cmps
        in
        if head_ok && cmps_ok then found := true
      end
    in
    List.iter check (Eval.answers inst super.Query.body);
    !found
  end

let equivalent a b = contained ~sub:a ~super:b && contained ~sub:b ~super:a

let minimize (q : Query.t) =
  let safe body =
    body <> []
    && begin
      let bv =
        List.fold_left
          (fun acc a -> Term.Var_set.union acc (Atom.vars a))
          Term.Var_set.empty body
      in
      Term.Var_set.subset (Query.answer_vars q) bv
      && List.for_all
           (fun c -> Term.Var_set.subset (Atom.Cmp.vars c) bv)
           q.Query.cmps
    end
  in
  let rec shrink body =
    let try_drop i =
      let body' = List.filteri (fun j _ -> j <> i) body in
      if not (safe body') then None
      else
        let q' =
          Query.make ~name:q.Query.name ~cmps:q.Query.cmps ~head:q.Query.head
            body'
        in
        (* dropping atoms only widens the query, so equivalence reduces
           to q' ⊆ q *)
        if contained ~sub:q' ~super:q then Some body' else None
    in
    let rec first_drop i =
      if i >= List.length body then None
      else match try_drop i with Some b -> Some b | None -> first_drop (i + 1)
    in
    match first_drop 0 with Some b -> shrink b | None -> body
  in
  let body = shrink q.Query.body in
  if List.length body = List.length q.Query.body then q
  else Query.make ~name:q.Query.name ~cmps:q.Query.cmps ~head:q.Query.head body

let prune_ucq disjuncts =
  let arr = Array.of_list disjuncts in
  let n = Array.length arr in
  let dropped = Array.make n false in
  for i = 0 to n - 1 do
    if not dropped.(i) then
      for j = 0 to n - 1 do
        if i <> j && (not dropped.(i)) && not dropped.(j) then
          if contained ~sub:arr.(i) ~super:arr.(j) then
            if contained ~sub:arr.(j) ~super:arr.(i) then begin
              (* equivalent: keep the earlier one *)
              if j < i then dropped.(i) <- true else dropped.(j) <- true
            end
            else dropped.(i) <- true
      done
  done;
  List.filteri (fun i _ -> not dropped.(i)) (Array.to_list arr)
