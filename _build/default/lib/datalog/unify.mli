(** Unification and matching of atoms.

    [unify] treats variables of both atoms as unifiable (used by the
    top-down prover and the rewriting engine — rename apart first).
    [match_against] is one-way: only the pattern's variables may be
    bound (used for trigger finding and fact lookup). *)

val unify_terms : Subst.t -> Term.t -> Term.t -> Subst.t option

val unify : ?init:Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** Most general unifier of two atoms (same predicate and arity
    required). *)

val match_against : ?init:Subst.t -> pattern:Atom.t -> Atom.t -> Subst.t option
(** [match_against ~pattern a] binds only [pattern]'s variables so that
    the instantiated pattern equals [a]; [a]'s variables are treated as
    constants (normally [a] is ground). *)

val rename_apart : suffix:string -> Atom.t list -> Atom.t list
(** Rename every variable [v] to [v ^ suffix]. *)
