type t = Term.t Term.Var_map.t

let empty = Term.Var_map.empty
let is_empty = Term.Var_map.is_empty

let find s v = Term.Var_map.find_opt v s

let rec walk s t =
  match t with
  | Term.Const _ -> t
  | Term.Var v -> (
    match find s v with
    | Some t' when not (Term.equal t' t) -> walk s t'
    | _ -> t)

let bind s v t =
  let t = walk s t in
  match walk s (Term.Var v) with
  | Term.Var v' when String.equal v' v ->
    if Term.equal t (Term.Var v) then Some s
    else Some (Term.Var_map.add v t s)
  | existing -> if Term.equal existing t then Some s else None

let bind_exn s v t =
  match bind s v t with
  | Some s' -> s'
  | None ->
    invalid_arg (Printf.sprintf "Subst.bind_exn: conflicting binding for %s" v)

let of_list l = List.fold_left (fun s (v, t) -> bind_exn s v t) empty l

let to_list s = Term.Var_map.bindings s

let apply_term s t = walk s t

let apply_atom s a = { a with Atom.args = Array.map (walk s) a.Atom.args }

let apply_atoms s l = List.map (apply_atom s) l

let apply_cmp s (c : Atom.Cmp.t) =
  { c with Atom.Cmp.lhs = walk s c.Atom.Cmp.lhs; rhs = walk s c.Atom.Cmp.rhs }

let domain s =
  Term.Var_map.fold (fun v _ acc -> Term.Var_set.add v acc) s
    Term.Var_set.empty

let is_ground_on s vars =
  Term.Var_set.for_all
    (fun v -> match walk s (Term.Var v) with Term.Const _ -> true | _ -> false)
    vars

let value_of s v =
  match walk s (Term.Var v) with
  | Term.Const c -> Some c
  | Term.Var _ -> None

let restrict s vars = Term.Var_map.filter (fun v _ -> Term.Var_set.mem v vars) s

let equal a b =
  (* Compare as fully-walked maps so chains and direct bindings agree. *)
  let norm s = Term.Var_map.mapi (fun v _ -> walk s (Term.Var v)) s in
  Term.Var_map.equal Term.equal (norm a) (norm b)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (v, t) -> Format.fprintf ppf "%s ↦ %a" v Term.pp t))
    (to_list s)
