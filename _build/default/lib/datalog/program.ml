module Instance = Mdqa_relational.Instance
module Rel_schema = Mdqa_relational.Rel_schema

type t = {
  tgds : Tgd.t list;
  egds : Egd.t list;
  ncs : Nc.t list;
  facts : Atom.t list;
}

module Smap = Map.Make (String)

let atoms_of p =
  List.concat_map (fun (t : Tgd.t) -> t.body @ t.head) p.tgds
  @ List.concat_map (fun (e : Egd.t) -> e.body) p.egds
  @ List.concat_map (fun (n : Nc.t) -> n.body) p.ncs
  @ p.facts

let arities p =
  List.fold_left
    (fun acc a ->
      let pred = Atom.pred a and n = Atom.arity a in
      match Smap.find_opt pred acc with
      | Some n' when n' <> n ->
        invalid_arg
          (Printf.sprintf
             "Program: predicate %s used with arities %d and %d" pred n' n)
      | _ -> Smap.add pred n acc)
    Smap.empty (atoms_of p)

let make ?(tgds = []) ?(egds = []) ?(ncs = []) ?(facts = []) () =
  List.iter
    (fun f ->
      if not (Atom.is_ground f) then
        invalid_arg
          (Format.asprintf "Program: fact %a is not ground" Atom.pp f))
    facts;
  let p = { tgds; egds; ncs; facts } in
  ignore (arities p);
  p

let arity_of p pred = Smap.find_opt pred (arities p)

let predicates p = Smap.bindings (arities p)

let positions p =
  List.concat_map
    (fun (pred, n) -> List.init n (fun i -> (pred, i)))
    (predicates p)

let idb_predicates p =
  List.sort_uniq String.compare (List.concat_map Tgd.head_preds p.tgds)

let edb_predicates p =
  let idb = idb_predicates p in
  List.filter
    (fun (pred, _) -> not (List.mem pred idb))
    (predicates p)
  |> List.map fst

let tgds_with_head p pred =
  List.filter (fun t -> List.mem pred (Tgd.head_preds t)) p.tgds

let predicate_graph p =
  List.concat_map
    (fun t ->
      List.concat_map
        (fun b -> List.map (fun h -> (b, h)) (Tgd.head_preds t))
        (Tgd.body_preds t))
    p.tgds
  |> List.sort_uniq compare

let predicate_graph_acyclic p =
  let edges = predicate_graph p in
  let succs n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let nodes =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  (* DFS cycle detection with colours. *)
  let colour = Hashtbl.create 16 in
  let rec visit n =
    match Hashtbl.find_opt colour n with
    | Some `Done -> true
    | Some `Active -> false
    | None ->
      Hashtbl.add colour n `Active;
      let ok = List.for_all visit (succs n) in
      Hashtbl.replace colour n `Done;
      ok
  in
  List.for_all visit nodes

let relevant_tgds p ~goals =
  (* target predicates: the goals plus every EGD/NC body predicate *)
  let targets =
    goals
    @ List.concat_map (fun (e : Egd.t) -> List.map Atom.pred e.Egd.body) p.egds
    @ List.concat_map (fun (n : Nc.t) -> List.map Atom.pred n.Nc.body) p.ncs
    |> List.sort_uniq String.compare
  in
  let edges = predicate_graph p in
  (* Can [pred] reach a target through body→head edges?  Negative
     results under a cycle cutoff are path-dependent, so only positive
     results are memoized (the graphs are small). *)
  let memo = Hashtbl.create 16 in
  let rec reaches seen pred =
    List.mem pred targets
    || Hashtbl.mem memo pred
    || (not (List.mem pred seen))
       &&
       let r =
         List.exists
           (fun (b, h) -> b = pred && reaches (pred :: seen) h)
           edges
       in
       if r then Hashtbl.replace memo pred ();
       r
  in
  List.filter
    (fun tgd -> List.exists (reaches []) (Tgd.head_preds tgd))
    p.tgds

let restrict_to_goals p ~goals =
  { p with tgds = relevant_tgds p ~goals }

let schema_for p pred =
  Option.map
    (fun n ->
      Rel_schema.of_names pred (List.init n (Printf.sprintf "c%d")))
    (arity_of p pred)

let declare_predicates p inst =
  List.iter
    (fun (pred, n) ->
      match Instance.find inst pred with
      | Some r ->
        if Mdqa_relational.Relation.arity r <> n then
          invalid_arg
            (Printf.sprintf
               "Program.declare_predicates: %s has arity %d in instance, %d \
                in program"
               pred
               (Mdqa_relational.Relation.arity r)
               n)
      | None ->
        ignore
          (Instance.declare inst
             (Rel_schema.of_names pred (List.init n (Printf.sprintf "c%d")))))
    (predicates p)

let instance_of_facts p =
  let inst = Instance.create () in
  declare_predicates p inst;
  List.iter
    (fun f -> ignore (Instance.add_tuple inst (Atom.pred f) (Atom.to_tuple f)))
    p.facts;
  inst

let pp ppf p =
  let sep ppf () = Format.pp_print_cut ppf () in
  Format.fprintf ppf "@[<v>%a%a%a%a@]"
    (Format.pp_print_list ~pp_sep:sep (fun ppf t ->
         Format.fprintf ppf "%a." Tgd.pp t))
    p.tgds
    (fun ppf l ->
      List.iter (fun e -> Format.fprintf ppf "@,%a." Egd.pp e) l)
    p.egds
    (fun ppf l -> List.iter (fun n -> Format.fprintf ppf "@,%a." Nc.pp n) l)
    p.ncs
    (fun ppf l -> List.iter (fun f -> Format.fprintf ppf "@,%a." Atom.pp f) l)
    p.facts
