module Instance = Mdqa_relational.Instance
module Relation = Mdqa_relational.Relation
module Tuple = Mdqa_relational.Tuple
module Value = Mdqa_relational.Value

type result = {
  answers : Tuple.t list;
  complete : bool;
  steps : int;
}

exception Truncated
exception Proved

(* Positions of [a] ground under [s], for indexed candidate lookup. *)
let bound_positions s (a : Atom.t) =
  let acc = ref [] in
  List.iteri
    (fun i t ->
      match Subst.walk s t with
      | Term.Const c -> acc := (i, c) :: !acc
      | Term.Var _ -> ())
    (Atom.args a);
  List.rev !acc

let search ?(max_depth = 32) ?(max_steps = 2_000_000) (program : Program.t)
    inst (q : Query.t) ~steps ~emit =
  let rename_counter = ref 0 in
  let fresh = Value.Fresh.create ~start:1_000_000 () in
  let tick () =
    incr steps;
    if !steps > max_steps then raise Truncated
  in
  (* Comparisons: ground ones must hold and must not involve nulls
     (a null-dependent comparison is not certain). *)
  let check_cmps s cmps =
    let rec go pending = function
      | [] -> Some (List.rev pending)
      | c :: rest -> (
        let c' = Subst.apply_cmp s c in
        match c'.Atom.Cmp.lhs, c'.Atom.Cmp.rhs with
        | Term.Const a, Term.Const b ->
          if Value.is_null a || Value.is_null b then None
          else if Atom.Cmp.holds c'.Atom.Cmp.op a b then go pending rest
          else None
        | _ -> go (c :: pending) rest)
    in
    go [] cmps
  in
  let rec resolve goals s lemmas depth cmps =
    tick ();
    match check_cmps s cmps with
    | None -> ()
    | Some pending -> (
      match goals with
      | [] -> if pending = [] then emit s
      | g :: rest ->
        let g = Subst.apply_atom s g in
        (* (a) match a ground fact of the extensional database *)
        (match Instance.find inst (Atom.pred g) with
         | None -> ()
         | Some r ->
           List.iter
             (fun tuple ->
               match
                 Unify.match_against ~init:s ~pattern:g
                   (Atom.of_fact (Atom.pred g) tuple)
               with
               | Some s' -> resolve rest s' lemmas depth pending
               | None -> ())
             (Relation.scan r (bound_positions s g)));
        (* (b) match a lemma: a sibling head atom of an earlier rule
           application in this branch *)
        List.iter
          (fun lemma ->
            match Unify.unify ~init:s g lemma with
            | Some s' -> resolve rest s' lemmas depth pending
            | None -> ())
          lemmas;
        (* (c) apply a TGD whose head unifies with the goal *)
        if depth < max_depth then
          List.iter
            (fun tgd ->
              incr rename_counter;
              let tgd' =
                Tgd.rename ~suffix:(Printf.sprintf "#%d" !rename_counter) tgd
              in
              (* Existentials become fresh nulls before unification. *)
              let ex = Tgd.existential_vars tgd' in
              let ex_subst =
                Term.Var_set.fold
                  (fun v acc ->
                    Subst.bind_exn acc v
                      (Term.Const (Value.Fresh.next fresh)))
                  ex Subst.empty
              in
              let head = Subst.apply_atoms ex_subst tgd'.Tgd.head in
              List.iteri
                (fun i h ->
                  match Unify.unify ~init:s g h with
                  | Some s' ->
                    let siblings =
                      List.filteri (fun j _ -> j <> i) head
                    in
                    resolve
                      (tgd'.Tgd.body @ rest)
                      s' (siblings @ lemmas) (depth + 1) pending
                  | None -> ())
                head)
            (Program.tgds_with_head program (Atom.pred g)))
  in
  resolve q.Query.body Subst.empty [] 0 q.Query.cmps

let head_image (q : Query.t) s =
  List.map (fun t -> Subst.walk s t) q.Query.head

let answer ?max_depth ?max_steps program inst q =
  let steps = ref 0 in
  let found = ref Tuple.Set.empty in
  let complete = ref true in
  (try
     search ?max_depth ?max_steps program inst q ~steps ~emit:(fun s ->
         let img = head_image q s in
         let ground =
           List.for_all
             (function
               | Term.Const c -> not (Value.is_null c)
               | Term.Var _ -> false)
             img
         in
         if ground then
           found :=
             Tuple.Set.add
               (Tuple.of_list
                  (List.map
                     (function
                       | Term.Const c -> c
                       | Term.Var _ -> assert false)
                     img))
               !found)
   with Truncated -> complete := false);
  { answers = Tuple.Set.elements !found; complete = !complete; steps = !steps }

let entails ?max_depth ?max_steps program inst q =
  let steps = ref 0 in
  try
    search ?max_depth ?max_steps program inst q ~steps ~emit:(fun _ ->
        raise Proved);
    false
  with
  | Proved -> true
  | Truncated -> false
