(** Negative constraints: [∀x̄ (φ(x̄) → ⊥)], with optional comparison
    side conditions.

    The paper's dimensional constraints of form (3) ("no patient was in
    intensive care after August 2005") and the referential constraints
    of form (1) (compiled by the multidimensional layer). *)

type t = private {
  name : string;
  body : Atom.t list;
  cmps : Atom.Cmp.t list;
}

val make : ?name:string -> ?cmps:Atom.Cmp.t list -> Atom.t list -> t
(** @raise Invalid_argument if the body is empty or a comparison uses a
    variable absent from the body. *)

val body_vars : t -> Term.Var_set.t

val pp : Format.formatter -> t -> unit
