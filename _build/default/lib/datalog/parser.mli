(** Recursive-descent parser for the Datalog± surface syntax.

    Statement forms (each terminated by [.]):

    {v
    % comment                      # comment
    p(a, "Tom Waits", 3).          fact (must be ground)
    h(X, Y) :- p(X, Z), q(Z, Y).   TGD; head vars not in the body are
                                   existential; multi-atom heads:
                                   h1(X), h2(X) :- p(X).
    X = Y :- p(X), p(Y).           EGD
    ! :- p(X), q(X), X >= 5.       negative constraint (comparisons ok)
    ?ans(X) :- p(X, Y), Y != b.    named query
    ? :- p(X).                     boolean query
    v}

    Constants are lowercase identifiers, quoted strings or numbers;
    variables start with an uppercase letter or [_]. *)

type parsed = {
  program : Program.t;
  queries : Query.t list;  (** in source order *)
}

exception Error of { line : int; message : string }

val parse_string : string -> parsed
(** @raise Error on syntax errors, non-ground facts, unsafe rules. *)

val parse_file : string -> parsed
(** @raise Sys_error on I/O failure, {!Error} on syntax errors. *)

val parse_query : string -> Query.t
(** Parse a single query statement (with or without the leading [?]).
    @raise Error if the input is not exactly one query. *)

(** Lower-level parsing toolkit, for layers that extend the surface
    syntax with their own declarations (e.g. the multidimensional
    context format of [Mdqa_context.Md_parser]) while reusing the
    statement grammar above. *)
module Raw : sig
  type state

  val init : string -> state
  (** Tokenize an input. @raise Error on lexical errors. *)

  val at_eof : state -> bool

  val peek : state -> Lexer.token * int
  (** Current token and its line, without consuming. *)

  val peek2 : state -> Lexer.token
  (** One token of extra lookahead. *)

  val advance : state -> unit
  val expect : state -> Lexer.token -> string -> unit
  val error : state -> string -> 'a
  (** @raise Error at the current line. *)

  type statement =
    | S_fact of Atom.t
    | S_tgd of Tgd.t
    | S_egd of Egd.t
    | S_nc of Nc.t
    | S_query of Query.t

  val statement : state -> statement
  (** Parse one datalog statement (as documented above).
      @raise Error on syntax errors. *)
end
