module Tuple = Mdqa_relational.Tuple
module Value = Mdqa_relational.Value

type t = { pred : string; args : Term.t array }

let make pred args = { pred; args = Array.of_list args }
let pred a = a.pred
let args a = Array.to_list a.args
let arity a = Array.length a.args

let arg a i =
  if i < 0 || i >= Array.length a.args then
    invalid_arg
      (Printf.sprintf "Atom.arg: position %d out of range for %s/%d" i a.pred
         (Array.length a.args));
  a.args.(i)

let vars a =
  Array.fold_left
    (fun acc t ->
      match t with Term.Var v -> Term.Var_set.add v acc | Term.Const _ -> acc)
    Term.Var_set.empty a.args

let var_positions a v =
  let acc = ref [] in
  Array.iteri
    (fun i t -> if Term.equal t (Term.Var v) then acc := i :: !acc)
    a.args;
  List.rev !acc

let is_ground a = Array.for_all Term.is_const a.args

let to_tuple a =
  Tuple.of_list
    (List.map
       (fun t ->
         match t with
         | Term.Const c -> c
         | Term.Var v ->
           invalid_arg
             (Printf.sprintf "Atom.to_tuple: %s contains variable %s" a.pred v))
       (args a))

let of_fact pred tuple =
  make pred (List.map Term.const (Tuple.to_list tuple))

let rename_vars f a =
  { a with
    args =
      Array.map
        (function Term.Var v -> Term.Var (f v) | Term.Const _ as c -> c)
        a.args }

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Term.pp)
    (args a)

module Cmp = struct
  type op = Eq | Neq | Lt | Le | Gt | Ge

  type nonrec t = { op : op; lhs : Term.t; rhs : Term.t }

  let make op lhs rhs = { op; lhs; rhs }

  let vars c =
    let add acc = function
      | Term.Var v -> Term.Var_set.add v acc
      | Term.Const _ -> acc
    in
    add (add Term.Var_set.empty c.lhs) c.rhs

  let holds op a b =
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Neq -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

  let eval c =
    match c.lhs, c.rhs with
    | Term.Const a, Term.Const b -> Some (holds c.op a b)
    | _ -> None

  let op_to_string = function
    | Eq -> "="
    | Neq -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="

  let pp ppf c =
    Format.fprintf ppf "%a %s %a" Term.pp c.lhs (op_to_string c.op) Term.pp
      c.rhs
end
