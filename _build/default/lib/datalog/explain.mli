(** Derivation trees: why is a fact in the chased instance?

    Built from the provenance recorded by
    [Chase.run ~provenance:true ...].  In a quality-assessment context
    this answers "why was this measurement deemed up to quality": the
    tree bottoms out in extensional facts (the recorded data, the
    dimension structure) and each internal node names the dimensional
    or contextual rule that fired. *)

type tree = {
  fact : string * Mdqa_relational.Tuple.t;
  rule : string option;
      (** [None] for extensional facts, [Some rule_name] otherwise *)
  premises : tree list;
}

val why :
  Chase.result -> string -> Mdqa_relational.Tuple.t -> (tree, string) result
(** [why result pred tuple] reconstructs the derivation of the fact.
    [Error] if the chase was run without provenance or the fact is not
    in the chased instance. *)

val depth : tree -> int
(** Longest rule chain in the tree (an extensional fact has depth 0). *)

val rules_used : tree -> string list
(** Rule names appearing in the tree, deduplicated, sorted. *)

val extensional_support : tree -> (string * Mdqa_relational.Tuple.t) list
(** The extensional leaves the fact ultimately rests on (deduplicated,
    sorted). *)

val pp : Format.formatter -> tree -> unit
(** Indented rendering:
    {v
    measurements_q(Sep/5-12:10, Tom Waits, 38.2)   [measurements_q]
      measurements_ext(...)                        [measurements_ext]
        measurements_c(...)                        (extensional)
        ...
    v} *)
