(** Conjunctive-query containment, equivalence and minimization
    (Chandra–Merkin homomorphism test).

    [Q ⊆ Q'] (every answer of [Q] is an answer of [Q'] on every
    instance) holds iff there is a homomorphism from [Q'] into the
    {e frozen} body of [Q] mapping head to head.  Used by
    {!Rewrite.answers} to prune subsumed disjuncts from rewritten UCQs,
    and available as a standalone optimizer.

    Comparisons: the test is exact for comparison-free queries.  When
    either query carries comparisons, containment additionally requires
    the candidate homomorphism to map [Q']'s comparisons onto a
    syntactically identical subset of [Q]'s — sound (never claims a
    false containment) but incomplete. *)

val contained : sub:Query.t -> super:Query.t -> bool
(** [contained ~sub ~super]: is [sub ⊆ super]? *)

val equivalent : Query.t -> Query.t -> bool

val minimize : Query.t -> Query.t
(** The core of the query: repeatedly drop body atoms while the result
    stays equivalent.  The head and comparisons are preserved. *)

val prune_ucq : Query.t list -> Query.t list
(** Remove every disjunct contained in another one (keeping the first
    of equivalent pairs); the union's answers are unchanged. *)
