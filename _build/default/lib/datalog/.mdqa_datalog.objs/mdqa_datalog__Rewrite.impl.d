lib/datalog/rewrite.ml: Atom Containment Format Hashtbl List Mdqa_relational Option Printf Program Query String Subst Term Tgd Unify
