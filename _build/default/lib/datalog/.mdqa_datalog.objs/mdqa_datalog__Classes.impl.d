lib/datalog/classes.ml: Atom Format List Position_graph Program Set Stickiness Term Tgd
