lib/datalog/parser.ml: Atom Egd Fun Lexer List Mdqa_relational Nc Printf Program Query String Term Tgd
