lib/datalog/tgd.mli: Atom Format Term
