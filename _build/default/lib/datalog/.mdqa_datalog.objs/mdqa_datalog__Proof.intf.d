lib/datalog/proof.mli: Mdqa_relational Program Query
