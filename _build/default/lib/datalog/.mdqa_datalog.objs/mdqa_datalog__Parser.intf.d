lib/datalog/parser.mli: Atom Egd Lexer Nc Program Query Tgd
