lib/datalog/atom.ml: Array Format Int List Mdqa_relational Printf String Term
