lib/datalog/eval.mli: Atom Mdqa_relational Subst
