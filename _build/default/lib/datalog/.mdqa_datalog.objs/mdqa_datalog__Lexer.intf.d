lib/datalog/lexer.mli:
