lib/datalog/stickiness.ml: Atom Hashtbl List Option Position_graph Program Set Term Tgd
