lib/datalog/unify.mli: Atom Subst Term
