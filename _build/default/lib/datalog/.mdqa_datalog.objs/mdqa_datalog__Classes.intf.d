lib/datalog/classes.mli: Format Program
