lib/datalog/program.ml: Atom Egd Format Hashtbl List Map Mdqa_relational Nc Option Printf String Tgd
