lib/datalog/explain.ml: Chase Format Hashtbl List Mdqa_relational Set String
