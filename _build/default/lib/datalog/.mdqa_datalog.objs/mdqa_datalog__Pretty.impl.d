lib/datalog/pretty.ml: Atom Buffer Egd Format List Mdqa_relational Nc Printf Program Query String Term Tgd
