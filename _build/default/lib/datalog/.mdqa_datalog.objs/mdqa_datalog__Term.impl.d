lib/datalog/term.ml: Format Map Mdqa_relational Set String
