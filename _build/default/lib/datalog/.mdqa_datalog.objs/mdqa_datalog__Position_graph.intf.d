lib/datalog/position_graph.mli: Format Program
