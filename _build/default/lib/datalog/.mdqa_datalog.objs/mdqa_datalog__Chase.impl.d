lib/datalog/chase.ml: Atom Egd Eval Format Hashtbl Lazy List Logs Mdqa_relational Nc Option Program Subst Term Tgd
