lib/datalog/separability.ml: Egd Format List Position_graph Program Set Term
