lib/datalog/query.ml: Atom Chase Eval Format List Mdqa_relational Printf Program Subst Term
