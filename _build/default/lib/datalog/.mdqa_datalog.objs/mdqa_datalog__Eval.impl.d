lib/datalog/eval.ml: Atom List Mdqa_relational Option Subst Term Unify
