lib/datalog/subst.ml: Array Atom Format List Printf String Term
