lib/datalog/query.mli: Atom Chase Format Mdqa_relational Program Term
