lib/datalog/separability.mli: Egd Format Program
