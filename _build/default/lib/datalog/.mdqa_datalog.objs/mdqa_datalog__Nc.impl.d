lib/datalog/nc.ml: Atom Format List Printf Term
