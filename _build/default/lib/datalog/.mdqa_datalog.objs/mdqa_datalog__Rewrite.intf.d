lib/datalog/rewrite.mli: Format Mdqa_relational Program Query
