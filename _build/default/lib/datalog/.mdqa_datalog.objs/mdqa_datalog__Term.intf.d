lib/datalog/term.mli: Format Mdqa_relational Stdlib
