lib/datalog/chase.mli: Egd Format Hashtbl Mdqa_relational Nc Program Subst
