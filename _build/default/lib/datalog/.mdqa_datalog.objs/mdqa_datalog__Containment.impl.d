lib/datalog/containment.ml: Array Atom Eval List Mdqa_relational Printf Query String Subst Term
