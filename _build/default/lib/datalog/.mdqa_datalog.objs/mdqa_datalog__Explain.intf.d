lib/datalog/explain.mli: Chase Format Mdqa_relational
