lib/datalog/egd.mli: Atom Format Term
