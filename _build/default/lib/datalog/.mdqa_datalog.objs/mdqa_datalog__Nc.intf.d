lib/datalog/nc.mli: Atom Format Term
