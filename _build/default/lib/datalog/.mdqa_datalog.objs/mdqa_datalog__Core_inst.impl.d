lib/datalog/core_inst.ml: Atom Eval List Mdqa_relational Printf Term
