lib/datalog/stickiness.mli: Program Tgd
