lib/datalog/program.mli: Atom Egd Format Mdqa_relational Nc Tgd
