lib/datalog/core_inst.mli: Mdqa_relational
