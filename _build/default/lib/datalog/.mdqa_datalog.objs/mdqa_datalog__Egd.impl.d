lib/datalog/egd.ml: Atom Format List Printf Term
