lib/datalog/containment.mli: Query
