lib/datalog/subst.mli: Atom Format Mdqa_relational Term
