lib/datalog/tgd.ml: Atom Format Hashtbl List Option Printf String Term Unify
