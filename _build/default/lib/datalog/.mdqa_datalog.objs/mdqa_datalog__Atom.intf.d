lib/datalog/atom.mli: Format Mdqa_relational Term
