lib/datalog/pretty.mli: Atom Egd Format Nc Program Query Term Tgd
