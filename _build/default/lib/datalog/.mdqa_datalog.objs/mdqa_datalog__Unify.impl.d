lib/datalog/unify.ml: Atom List Mdqa_relational String Subst Term
