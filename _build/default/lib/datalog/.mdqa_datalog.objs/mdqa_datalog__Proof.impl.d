lib/datalog/proof.ml: Atom List Mdqa_relational Printf Program Query Subst Term Tgd Unify
