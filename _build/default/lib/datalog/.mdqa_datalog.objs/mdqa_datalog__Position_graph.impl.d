lib/datalog/position_graph.ml: Atom Format List Map Option Program Set Term Tgd
