type t = {
  name : string;
  body : Atom.t list;
  lhs : Term.t;
  rhs : Term.t;
}

let counter = ref 0

let body_vars_of body =
  List.fold_left
    (fun acc a -> Term.Var_set.union acc (Atom.vars a))
    Term.Var_set.empty body

let make ?name ~body lhs rhs =
  if body = [] then invalid_arg "Egd.make: empty body";
  let bv = body_vars_of body in
  let check = function
    | Term.Var v when not (Term.Var_set.mem v bv) ->
      invalid_arg
        (Printf.sprintf "Egd.make: head variable %s not in body" v)
    | _ -> ()
  in
  check lhs;
  check rhs;
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "egd%d" !counter
  in
  { name; body; lhs; rhs }

let body_vars t = body_vars_of t.body

let equated_vars t =
  let add acc = function
    | Term.Var v -> Term.Var_set.add v acc
    | Term.Const _ -> acc
  in
  add (add Term.Var_set.empty t.lhs) t.rhs

let var_body_positions t v =
  List.concat_map
    (fun a -> List.map (fun i -> (Atom.pred a, i)) (Atom.var_positions a v))
    t.body

let pp ppf t =
  Format.fprintf ppf "%a = %a :- %a" Term.pp t.lhs Term.pp t.rhs
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Atom.pp)
    t.body
