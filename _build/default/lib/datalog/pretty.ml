module Value = Mdqa_relational.Value

(* Symbols must re-lex as IDENT (lowercase start, identifier chars, no
   internal '.' ambiguity); anything else is emitted as a quoted
   string. *)
let symbol_needs_quotes s =
  s = ""
  || (match s.[0] with 'a' .. 'z' -> false | _ -> true)
  || not
       (String.for_all
          (function
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '/' | ':' ->
              true
            | _ -> false)
          s)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\""
      else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let value ppf = function
  | Value.Sym s ->
    Format.pp_print_string ppf (if symbol_needs_quotes s then quote s else s)
  | Value.Int i -> Format.pp_print_int ppf i
  | Value.Real r ->
    (* "%F" prints 38.0 as "38.", which the lexer would read as an
       integer followed by the clause terminator *)
    let s = Printf.sprintf "%F" r in
    let s =
      if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0"
      else s
    in
    Format.pp_print_string ppf s
  | Value.Null k ->
    (* nulls have no surface syntax; emit a reserved quoted form *)
    Format.pp_print_string ppf (quote (Printf.sprintf "_:%d" k))

let term ppf = function
  | Term.Var v -> Format.pp_print_string ppf v
  | Term.Const c -> value ppf c

let comma_sep pp ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf l

let atom ppf a = Format.fprintf ppf "%s(%a)" (Atom.pred a) (comma_sep term) (Atom.args a)

let cmp ppf (c : Atom.Cmp.t) =
  Format.fprintf ppf "%a %s %a" term c.Atom.Cmp.lhs
    (Atom.Cmp.op_to_string c.Atom.Cmp.op)
    term c.Atom.Cmp.rhs

let body ppf (atoms, cmps) =
  comma_sep atom ppf atoms;
  List.iter (fun c -> Format.fprintf ppf ", %a" cmp c) cmps

let tgd ppf (t : Tgd.t) =
  Format.fprintf ppf "%a :- %a." (comma_sep atom) t.Tgd.head body
    (t.Tgd.body, [])

let egd ppf (e : Egd.t) =
  Format.fprintf ppf "%a = %a :- %a." term e.Egd.lhs term e.Egd.rhs body
    (e.Egd.body, [])

let nc ppf (n : Nc.t) =
  Format.fprintf ppf "! :- %a." body (n.Nc.body, n.Nc.cmps)

let query ppf (q : Query.t) =
  if Query.is_boolean q then
    Format.fprintf ppf "? :- %a." body (q.Query.body, q.Query.cmps)
  else
    Format.fprintf ppf "?%s(%a) :- %a." q.Query.name (comma_sep term)
      q.Query.head body
      (q.Query.body, q.Query.cmps)

let fact ppf (f : Atom.t) = Format.fprintf ppf "%a." atom f

let program ppf (p : Program.t) =
  let pr pp_item items =
    List.iter (fun x -> Format.fprintf ppf "%a@," pp_item x) items
  in
  Format.fprintf ppf "@[<v>";
  pr fact p.Program.facts;
  pr tgd p.Program.tgds;
  pr egd p.Program.egds;
  pr nc p.Program.ncs;
  Format.fprintf ppf "@]"

let program_to_string p = Format.asprintf "%a" program p
let query_to_string q = Format.asprintf "%a" query q
