type t = {
  name : string;
  body : Atom.t list;
  head : Atom.t list;
}

let counter = ref 0

let vars_of_atoms atoms =
  List.fold_left
    (fun acc a -> Term.Var_set.union acc (Atom.vars a))
    Term.Var_set.empty atoms

let make ?name ~body ~head () =
  if body = [] then invalid_arg "Tgd.make: empty body";
  if head = [] then invalid_arg "Tgd.make: empty head";
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "tgd%d" !counter
  in
  { name; body; head }

let body_vars t = vars_of_atoms t.body
let head_vars t = vars_of_atoms t.head

let existential_vars t = Term.Var_set.diff (head_vars t) (body_vars t)
let frontier t = Term.Var_set.inter (head_vars t) (body_vars t)

let is_full t = Term.Var_set.is_empty (existential_vars t)

let repeated_body_vars t =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (function
          | Term.Var v ->
            Hashtbl.replace counts v
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
          | Term.Const _ -> ())
        (Atom.args a))
    t.body;
  Hashtbl.fold
    (fun v n acc -> if n >= 2 then Term.Var_set.add v acc else acc)
    counts Term.Var_set.empty

let rename ~suffix t =
  { t with
    body = Unify.rename_apart ~suffix t.body;
    head = Unify.rename_apart ~suffix t.head }

let head_preds t = List.map Atom.pred t.head
let body_preds t = List.map Atom.pred t.body

let pp_atoms ppf atoms =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Atom.pp ppf atoms

let pp ppf t =
  let ex = existential_vars t in
  if Term.Var_set.is_empty ex then
    Format.fprintf ppf "%a :- %a" pp_atoms t.head pp_atoms t.body
  else
    Format.fprintf ppf "exists %s. %a :- %a"
      (String.concat ", " (Term.Var_set.elements ex))
      pp_atoms t.head pp_atoms t.body
