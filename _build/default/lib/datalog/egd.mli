(** Equality-generating dependencies: [∀x̄ (φ(x̄) → x = x')].

    The paper's dimensional constraints of form (2), e.g. "all the
    thermometers used in a unit are of the same type". *)

type t = private {
  name : string;
  body : Atom.t list;
  lhs : Term.t;
  rhs : Term.t;
}

val make : ?name:string -> body:Atom.t list -> Term.t -> Term.t -> t
(** @raise Invalid_argument if the body is empty or if a side is a
    variable that does not occur in the body. *)

val body_vars : t -> Term.Var_set.t

val equated_vars : t -> Term.Var_set.t
(** The head variables (0, 1 or 2 of them; a side may be a constant). *)

val var_body_positions : t -> string -> (string * int) list
(** Positions [(pred, i)] at which the variable occurs in the body. *)

val pp : Format.formatter -> t -> unit
