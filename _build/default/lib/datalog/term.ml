module Value = Mdqa_relational.Value

type t =
  | Var of string
  | Const of Value.t

let var v = Var v
let const c = Const c
let sym s = Const (Value.sym s)
let int i = Const (Value.int i)

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let as_var = function Var v -> Some v | Const _ -> None
let as_const = function Const c -> Some c | Var _ -> None

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Value.pp ppf c

module Ordered = struct
  type nonrec t = t
  let compare = compare
end

module Var_set = Set.Make (String)
module Var_map = Map.Make (String)
module Set = Set.Make (Ordered)
