(** The dependency graph on predicate positions, with ordinary and
    special edges (Fagin et al.; Calì–Gottlob–Pieris).

    Nodes are positions [(pred, i)].  For every TGD and every frontier
    variable [x] occurring in the body at position [πb]:
    - an {e ordinary} edge [πb → πh] for every occurrence of [x] in the
      head at [πh];
    - a {e special} edge [πb → πz] for every position [πz] of an
      existential variable in the head.

    Special edges record where labeled nulls are created; cycles
    through special edges are how a chase can invent unboundedly many
    nulls.  Positions {e not} reachable from a special edge lying on a
    cycle have finite rank; the set ∏_F of finite-rank positions is the
    ingredient of the weak-stickiness test. *)

type position = string * int

type t

val build : Program.t -> t

val positions : t -> position list

val edges : t -> (position * position * [ `Ordinary | `Special ]) list

val is_weakly_acyclic : t -> bool
(** No cycle contains a special edge — the chase terminates on all
    instances (Fagin et al., data exchange). *)

val infinite_rank_positions : t -> position list
(** Positions reachable from a special edge that lies on a cycle. *)

val finite_rank_positions : t -> position list
(** ∏_F: the complement of {!infinite_rank_positions} within
    {!positions}. *)

val rank : t -> position -> int option
(** [Some r]: the maximum number of special edges on any path ending at
    the position; [None] for infinite rank.  Positions absent from the
    program have rank [Some 0]. *)

val affected_positions : t -> position list
(** Positions where the chase may place a labeled null: positions of
    existential variables, closed under propagation of frontier
    variables occurring only at affected body positions. *)

val pp : Format.formatter -> t -> unit
