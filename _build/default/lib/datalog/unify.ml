let unify_terms s a b =
  let a = Subst.walk s a and b = Subst.walk s b in
  (* After walking, any [Var v] is unbound in [s], so [bind] succeeds. *)
  match a, b with
  | Term.Const x, Term.Const y ->
    if Mdqa_relational.Value.equal x y then Some s else None
  | Term.Var v, Term.Var w when String.equal v w -> Some s
  | Term.Var v, t | t, Term.Var v -> Subst.bind s v t

let on_args f ?(init = Subst.empty) (a : Atom.t) (b : Atom.t) =
  if
    (not (String.equal (Atom.pred a) (Atom.pred b)))
    || Atom.arity a <> Atom.arity b
  then None
  else
    let rec go s i =
      if i >= Atom.arity a then Some s
      else
        match f s (Atom.arg a i) (Atom.arg b i) with
        | Some s' -> go s' (i + 1)
        | None -> None
    in
    go init 0

let unify ?init a b = on_args unify_terms ?init a b

let match_term s pat target =
  let pat = Subst.walk s pat in
  match pat, target with
  | Term.Const x, Term.Const y ->
    if Mdqa_relational.Value.equal x y then Some s else None
  | Term.Const _, Term.Var _ -> None
  | Term.Var v, t -> Subst.bind s v t

let match_against ?init ~pattern target = on_args match_term ?init pattern target

let rename_apart ~suffix atoms =
  List.map (Atom.rename_vars (fun v -> v ^ suffix)) atoms
