(** Atoms [p(t1, ..., tn)] and comparison atoms.

    Relational atoms are the building blocks of rule bodies and heads.
    Comparison atoms ([t1 op t2]) appear in queries and negative
    constraints as side conditions; they are evaluated over the total
    order of {!Mdqa_relational.Value}. *)

type t = { pred : string; args : Term.t array }

val make : string -> Term.t list -> t
val pred : t -> string
val args : t -> Term.t list
val arity : t -> int

val arg : t -> int -> Term.t
(** @raise Invalid_argument if out of range. *)

val vars : t -> Term.Var_set.t
(** Variables occurring in the atom. *)

val var_positions : t -> string -> int list
(** Positions (0-based) at which the given variable occurs. *)

val is_ground : t -> bool

val to_tuple : t -> Mdqa_relational.Tuple.t
(** Convert a ground atom to a tuple.
    @raise Invalid_argument if the atom contains variables. *)

val of_fact : string -> Mdqa_relational.Tuple.t -> t

val rename_vars : (string -> string) -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Comparison operators for side conditions. *)
module Cmp : sig
  type op = Eq | Neq | Lt | Le | Gt | Ge

  type nonrec t = { op : op; lhs : Term.t; rhs : Term.t }

  val make : op -> Term.t -> Term.t -> t

  val vars : t -> Term.Var_set.t

  val holds : op -> Mdqa_relational.Value.t -> Mdqa_relational.Value.t -> bool
  (** Evaluate on ground values using {!Mdqa_relational.Value.compare};
      symbolic constants compare lexicographically, which the examples
      rely on for the paper's fixed-width timestamps. *)

  val eval : t -> bool option
  (** [Some b] if both sides are constants, [None] otherwise. *)

  val op_to_string : op -> string
  val pp : Format.formatter -> t -> unit
end
