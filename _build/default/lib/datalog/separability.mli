(** Sufficient conditions for the separability of EGDs and TGDs
    (Calì–Gottlob–Pieris; paper §III).

    EGDs and TGDs are {e separable} when conjunctive query answering
    can ignore the EGDs provided the extensional instance satisfies
    them: EGD enforcement never feeds the TGDs new derivations.  Two
    checkable sufficient conditions are implemented:

    - {!non_affected_heads}: every variable equated by an EGD occurs in
      the EGD body only at non-affected positions, so labeled nulls can
      never reach it and EGD applications involve extensional constants
      only;
    - {!within_positions}: every equated variable occurs only at
      positions from a caller-supplied closed set — the
      multidimensional layer passes the categorical positions, whose
      values come from the fixed finite dimension instances (the
      paper's criterion for rules of form (2) with categorical head
      variables). *)

type verdict = { separable : bool; offending : (Egd.t * string) list }

val non_affected_heads : Program.t -> verdict

val within_positions : Program.t -> closed:(string * int) list -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
