module Tuple = Mdqa_relational.Tuple
module Instance = Mdqa_relational.Instance

type t = {
  name : string;
  head : Term.t list;
  body : Atom.t list;
  cmps : Atom.Cmp.t list;
}

let counter = ref 0

let make ?name ?(cmps = []) ~head body =
  if body = [] then invalid_arg "Query.make: empty body";
  let bv =
    List.fold_left
      (fun acc a -> Term.Var_set.union acc (Atom.vars a))
      Term.Var_set.empty body
  in
  List.iter
    (function
      | Term.Var v when not (Term.Var_set.mem v bv) ->
        invalid_arg
          (Printf.sprintf "Query.make: head variable %s not in body" v)
      | _ -> ())
    head;
  List.iter
    (fun c ->
      Term.Var_set.iter
        (fun v ->
          if not (Term.Var_set.mem v bv) then
            invalid_arg
              (Printf.sprintf "Query.make: comparison variable %s not in body"
                 v))
        (Atom.Cmp.vars c))
    cmps;
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "q%d" !counter
  in
  { name; head; body; cmps }

let boolean ?name ?cmps body = make ?name ?cmps ~head:[] body

let is_boolean q = q.head = []

let answer_vars q =
  List.fold_left
    (fun acc t ->
      match t with
      | Term.Var v -> Term.Var_set.add v acc
      | Term.Const _ -> acc)
    Term.Var_set.empty q.head

let head_image q s =
  Tuple.of_list
    (List.map
       (fun t ->
         match Subst.walk s t with
         | Term.Const c -> c
         | Term.Var v ->
           invalid_arg
             (Printf.sprintf "Query: unbound head variable %s" v))
       q.head)

let matches inst q =
  let images =
    List.fold_left
      (fun acc s -> Tuple.Set.add (head_image q s) acc)
      Tuple.Set.empty
      (Eval.answers ~cmps:q.cmps inst q.body)
  in
  Tuple.Set.elements images

let certain inst q =
  List.filter (fun t -> not (Tuple.has_null t)) (matches inst q)

let holds inst q = Eval.exists ~cmps:q.cmps inst q.body

type 'a outcome =
  | Ok of 'a
  | Inconsistent of Chase.failure
  | Budget of Chase.stats

let with_chase ?chase_variant ?(goal_directed = false) ?max_steps ?max_nulls
    program inst q f =
  let program =
    if goal_directed then
      Program.restrict_to_goals program
        ~goals:(List.map Atom.pred q.body)
    else program
  in
  let result =
    Chase.run ?variant:chase_variant ?max_steps ?max_nulls program inst
  in
  match result.Chase.outcome with
  | Chase.Saturated -> Ok (f result.Chase.instance)
  | Chase.Failed failure -> Inconsistent failure
  | Chase.Out_of_budget -> Budget result.Chase.stats

let certain_answers ?chase_variant ?goal_directed ?max_steps ?max_nulls
    program inst q =
  with_chase ?chase_variant ?goal_directed ?max_steps ?max_nulls program inst
    q (fun i -> certain i q)

let entails ?chase_variant ?goal_directed ?max_steps ?max_nulls program inst q =
  with_chase ?chase_variant ?goal_directed ?max_steps ?max_nulls program inst
    q (fun i -> holds i q)

let pp ppf q =
  Format.fprintf ppf "%s(%a) :- %a" q.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Term.pp)
    q.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Atom.pp)
    q.body;
  List.iter (fun c -> Format.fprintf ppf ", %a" Atom.Cmp.pp c) q.cmps
