(** Terms of the Datalog± language: variables and constants.

    Constants embed {!Mdqa_relational.Value.t}, so labeled nulls
    produced by the chase are constants from the logic's point of view
    (they are elements of the extended domain Γ ∪ Γ_N). *)

type t =
  | Var of string  (** variable, conventionally capitalized *)
  | Const of Mdqa_relational.Value.t

val var : string -> t
val const : Mdqa_relational.Value.t -> t
val sym : string -> t
(** [sym s] is [Const (Sym s)]. *)

val int : int -> t

val is_var : t -> bool
val is_const : t -> bool

val as_var : t -> string option
val as_const : t -> Mdqa_relational.Value.t option

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

module Var_set : Stdlib.Set.S with type elt = string
module Var_map : Stdlib.Map.S with type key = string
module Set : Stdlib.Set.S with type elt = t
