module Pos_set = Set.Make (struct
  type t = string * int
  let compare = compare
end)

type verdict = { separable : bool; offending : (Egd.t * string) list }

let check_egds program ~allowed =
  let offending =
    List.concat_map
      (fun (egd : Egd.t) ->
        Term.Var_set.fold
          (fun v acc ->
            let pos = Egd.var_body_positions egd v in
            if List.for_all (fun p -> allowed p) pos then acc
            else (egd, v) :: acc)
          (Egd.equated_vars egd) [])
      program.Program.egds
  in
  { separable = offending = []; offending }

let non_affected_heads program =
  let g = Position_graph.build program in
  let affected = Pos_set.of_list (Position_graph.affected_positions g) in
  check_egds program ~allowed:(fun p -> not (Pos_set.mem p affected))

let within_positions program ~closed =
  let closed = Pos_set.of_list closed in
  check_egds program ~allowed:(fun p -> Pos_set.mem p closed)

let pp_verdict ppf v =
  if v.separable then Format.pp_print_string ppf "separable"
  else begin
    Format.fprintf ppf "not separable:";
    List.iter
      (fun ((egd : Egd.t), var) ->
        Format.fprintf ppf "@ %s equates %s at a disallowed position"
          egd.Egd.name var)
      v.offending
  end
