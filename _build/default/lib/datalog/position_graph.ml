type position = string * int

module Pos_set = Set.Make (struct
  type t = position
  let compare = compare
end)

module Pos_map = Map.Make (struct
  type t = position
  let compare = compare
end)

type t = {
  program : Program.t;
  positions : position list;
  edges : (position * position * [ `Ordinary | `Special ]) list;
}

(* Positions of variable [v] across a list of atoms. *)
let positions_of_var atoms v =
  List.concat_map
    (fun a -> List.map (fun i -> (Atom.pred a, i)) (Atom.var_positions a v))
    atoms

let build program =
  let edges =
    List.concat_map
      (fun (tgd : Tgd.t) ->
        let frontier = Tgd.frontier tgd in
        let existentials = Tgd.existential_vars tgd in
        let special_targets =
          Term.Var_set.fold
            (fun z acc -> positions_of_var tgd.Tgd.head z @ acc)
            existentials []
        in
        Term.Var_set.fold
          (fun x acc ->
            let body_pos = positions_of_var tgd.Tgd.body x in
            let head_pos = positions_of_var tgd.Tgd.head x in
            let ordinary =
              List.concat_map
                (fun pb -> List.map (fun ph -> (pb, ph, `Ordinary)) head_pos)
                body_pos
            in
            let special =
              List.concat_map
                (fun pb ->
                  List.map (fun pz -> (pb, pz, `Special)) special_targets)
                body_pos
            in
            ordinary @ special @ acc)
          frontier [])
      program.Program.tgds
    |> List.sort_uniq compare
  in
  { program; positions = Program.positions program; edges }

let positions g = g.positions
let edges g = g.edges

let successors g p =
  List.filter_map (fun (a, b, k) -> if a = p then Some (b, k) else None) g.edges

(* All positions reachable from [start] (inclusive). *)
let reachable g start =
  let seen = ref (Pos_set.singleton start) in
  let rec go p =
    List.iter
      (fun (q, _) ->
        if not (Pos_set.mem q !seen) then begin
          seen := Pos_set.add q !seen;
          go q
        end)
      (successors g p)
  in
  go start;
  !seen

let cyclic_special_edges g =
  List.filter
    (fun (u, v, k) -> k = `Special && Pos_set.mem u (reachable g v))
    g.edges

let is_weakly_acyclic g = cyclic_special_edges g = []

let infinite_rank_set g =
  List.fold_left
    (fun acc (_, v, _) -> Pos_set.union acc (reachable g v))
    Pos_set.empty (cyclic_special_edges g)

let infinite_rank_positions g = Pos_set.elements (infinite_rank_set g)

let finite_rank_positions g =
  let inf = infinite_rank_set g in
  List.filter (fun p -> not (Pos_set.mem p inf)) g.positions

(* Rank by iterative relaxation over the finite-rank subgraph: rank(p)
   = max over incoming edges (rank(src) + special?).  The subgraph may
   contain ordinary cycles; ranks still converge because an edge inside
   a cycle adds 0 (a special edge inside a cycle would have made the
   targets infinite).  We iterate to a fixpoint bounded by the number
   of special edges. *)
let rank g p =
  let inf = infinite_rank_set g in
  if Pos_set.mem p inf then None
  else begin
    let ranks = ref Pos_map.empty in
    let get q = Option.value ~default:0 (Pos_map.find_opt q !ranks) in
    let n_special =
      List.length (List.filter (fun (_, _, k) -> k = `Special) g.edges)
    in
    let changed = ref true in
    let guard = ref (n_special + List.length g.positions + 2) in
    while !changed && !guard > 0 do
      changed := false;
      decr guard;
      List.iter
        (fun (u, v, k) ->
          if not (Pos_set.mem u inf) && not (Pos_set.mem v inf) then begin
            let bump = if k = `Special then 1 else 0 in
            let r = get u + bump in
            if r > get v then begin
              ranks := Pos_map.add v r !ranks;
              changed := true
            end
          end)
        g.edges
    done;
    Some (get p)
  end

let affected_positions g =
  let tgds = g.program.Program.tgds in
  (* Base: positions of existential variables in heads. *)
  let base =
    List.fold_left
      (fun acc (tgd : Tgd.t) ->
        Term.Var_set.fold
          (fun z acc ->
            List.fold_left
              (fun acc p -> Pos_set.add p acc)
              acc
              (positions_of_var tgd.Tgd.head z))
          (Tgd.existential_vars tgd) acc)
      Pos_set.empty tgds
  in
  (* Propagation: a frontier variable occurring in the body only at
     affected positions contaminates its head positions. *)
  let step affected =
    List.fold_left
      (fun acc (tgd : Tgd.t) ->
        Term.Var_set.fold
          (fun x acc ->
            let body_pos = positions_of_var tgd.Tgd.body x in
            if
              body_pos <> []
              && List.for_all (fun p -> Pos_set.mem p affected) body_pos
            then
              List.fold_left
                (fun acc p -> Pos_set.add p acc)
                acc
                (positions_of_var tgd.Tgd.head x)
            else acc)
          (Tgd.frontier tgd) acc)
      affected tgds
  in
  let rec fix s =
    let s' = step s in
    if Pos_set.equal s s' then s else fix s'
  in
  Pos_set.elements (fix base)

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (u, v, k) ->
      Format.fprintf ppf "(%s,%d) %s-> (%s,%d)@," (fst u) (snd u)
        (match k with `Special -> "*" | `Ordinary -> "")
        (fst v) (snd v))
    g.edges;
  Format.fprintf ppf "@]"
