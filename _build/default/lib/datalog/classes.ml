module Pos_set = Set.Make (struct
  type t = string * int
  let compare = compare
end)

let is_linear (p : Program.t) =
  List.for_all (fun (t : Tgd.t) -> List.length t.Tgd.body = 1) p.Program.tgds

let guard_exists (tgd : Tgd.t) ~must_cover =
  Term.Var_set.is_empty must_cover
  || List.exists
       (fun a -> Term.Var_set.subset must_cover (Atom.vars a))
       tgd.Tgd.body

let is_guarded (p : Program.t) =
  List.for_all
    (fun (tgd : Tgd.t) -> guard_exists tgd ~must_cover:(Tgd.body_vars tgd))
    p.Program.tgds

let is_weakly_guarded (p : Program.t) =
  let g = Position_graph.build p in
  let affected = Pos_set.of_list (Position_graph.affected_positions g) in
  List.for_all
    (fun (tgd : Tgd.t) ->
      (* Variables occurring only at affected positions in the body. *)
      let must_cover =
        Term.Var_set.filter
          (fun v ->
            let pos =
              List.concat_map
                (fun a ->
                  List.map
                    (fun i -> (Atom.pred a, i))
                    (Atom.var_positions a v))
                tgd.Tgd.body
            in
            pos <> [] && List.for_all (fun q -> Pos_set.mem q affected) pos)
          (Tgd.body_vars tgd)
      in
      guard_exists tgd ~must_cover)
    p.Program.tgds

let is_sticky = Stickiness.is_sticky
let is_weakly_sticky = Stickiness.is_weakly_sticky

let is_weakly_acyclic p =
  Position_graph.is_weakly_acyclic (Position_graph.build p)

let is_warded (p : Program.t) =
  let g = Position_graph.build p in
  let affected = Pos_set.of_list (Position_graph.affected_positions g) in
  List.for_all
    (fun (tgd : Tgd.t) ->
      let positions_of v =
        List.concat_map
          (fun a ->
            List.map (fun i -> (Atom.pred a, i)) (Atom.var_positions a v))
          tgd.Tgd.body
      in
      let harmful v =
        let pos = positions_of v in
        pos <> [] && List.for_all (fun q -> Pos_set.mem q affected) pos
      in
      let dangerous =
        Term.Var_set.filter
          (fun v -> harmful v && Term.Var_set.mem v (Tgd.head_vars tgd))
          (Tgd.body_vars tgd)
      in
      Term.Var_set.is_empty dangerous
      || List.exists
           (fun ward ->
             Term.Var_set.subset dangerous (Atom.vars ward)
             && List.for_all
                  (fun other ->
                    other == ward
                    || Term.Var_set.for_all
                         (fun v -> not (harmful v))
                         (Term.Var_set.inter (Atom.vars ward)
                            (Atom.vars other)))
                  tgd.Tgd.body)
           tgd.Tgd.body)
    p.Program.tgds

type report = {
  linear : bool;
  guarded : bool;
  weakly_guarded : bool;
  sticky : bool;
  weakly_sticky : bool;
  weakly_acyclic : bool;
  warded : bool;
}

let classify p =
  { linear = is_linear p;
    guarded = is_guarded p;
    weakly_guarded = is_weakly_guarded p;
    sticky = is_sticky p;
    weakly_sticky = is_weakly_sticky p;
    weakly_acyclic = is_weakly_acyclic p;
    warded = is_warded p }

let pp_report ppf r =
  let yn b = if b then "yes" else "no" in
  Format.fprintf ppf
    "@[<v>linear:          %s@,guarded:         %s@,weakly guarded:  \
     %s@,sticky:          %s@,weakly sticky:   %s@,weakly acyclic:  \
     %s@,warded:          %s@]"
    (yn r.linear) (yn r.guarded) (yn r.weakly_guarded) (yn r.sticky)
    (yn r.weakly_sticky) (yn r.weakly_acyclic) (yn r.warded)
