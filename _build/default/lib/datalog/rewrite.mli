(** First-order (UCQ) rewriting of conjunctive queries, for the
    "upward-only" ontologies of §IV of the paper.

    The query is repeatedly {e unfolded}: an atom is resolved against a
    TGD head (renamed apart) and replaced by the TGD body.  Every
    intermediate query is kept in the output union, because a predicate
    may carry extensional facts as well as derived ones.  The resulting
    UCQ is evaluated directly on the extensional database — no chase.

    Unfolding an atom against a head with existential variables is only
    {e applicable} when each existential position meets an unshared,
    non-answer variable of the query (the standard single-piece
    condition); otherwise that unfolding is skipped.

    Termination: when the program's predicate graph is acyclic —
    syntactically guaranteed for upward-only multidimensional
    ontologies, where rules only move data to strictly higher category
    levels — unfolding terminates.  A [max_cqs] budget guards cyclic
    inputs and returns [Error] instead of diverging. *)

type rewriting = {
  ucq : Query.t list;  (** the union of conjunctive queries *)
  expansions : int;  (** unfolding steps performed *)
  pruned : int;  (** disjuncts removed by containment pruning *)
}

val rewritable : Program.t -> bool
(** Sufficient syntactic test: the predicate graph is acyclic. *)

val rewrite :
  ?max_cqs:int -> ?prune:bool -> Program.t -> Query.t ->
  (rewriting, string) result
(** Default [max_cqs] 10_000.  With [prune] (the default), disjuncts
    contained in another disjunct are removed via {!Containment} before
    evaluation. *)

val answers :
  ?max_cqs:int ->
  ?prune:bool ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  Query.t ->
  (Mdqa_relational.Tuple.t list, string) result
(** Rewrite, then evaluate each disjunct on the extensional instance;
    null-free answers only, sorted and deduplicated. *)

val pp_rewriting : Format.formatter -> rewriting -> unit
