type token =
  | IDENT of string
  | VAR of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE
  | BANG
  | QMARK
  | LBRACE
  | RBRACE
  | ARROW
  | COLON
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of { line : int; col : int; message : string }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* Identifier continuation characters; '.' is handled separately so a
   trailing period terminates the clause instead of gluing on. *)
let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '/' || c = ':'

let is_digit c = c >= '0' && c <= '9'

let tokens input =
  let n = String.length input in
  let line = ref 1 in
  let line_start = ref 0 in
  let fail i message =
    raise (Error { line = !line; col = i - !line_start + 1; message })
  in
  let out = ref [] in
  let emit t = out := (t, !line) :: !out in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      line_start := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' || c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '!' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit NEQ; i := !i + 2)
      else (emit BANG; incr i)
    else if c = '?' then (emit QMARK; incr i)
    else if c = '=' then (emit EQ; incr i)
    else if c = '<' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit LE; i := !i + 2)
      else (emit LT; incr i)
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit GE; i := !i + 2)
      else (emit GT; incr i)
    else if c = ':' then
      if !i + 1 < n && input.[!i + 1] = '-' then (emit TURNSTILE; i := !i + 2)
      else (emit COLON; incr i)
    else if c = '{' then (emit LBRACE; incr i)
    else if c = '}' then (emit RBRACE; incr i)
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then
      (emit ARROW; i := !i + 2)
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        if input.[!j] = '"' then
          if !j + 1 < n && input.[!j + 1] = '"' then begin
            Buffer.add_char buf '"';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buf input.[!j];
          incr j
        end
      done;
      if not !closed then fail !i "unterminated string";
      emit (STRING (Buffer.contents buf));
      i := !j
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1])
    then begin
      let j = ref !i in
      if input.[!j] = '-' then incr j;
      while !j < n && is_digit input.[!j] do
        incr j
      done;
      let is_float =
        !j + 1 < n && input.[!j] = '.' && is_digit input.[!j + 1]
      in
      if is_float then begin
        incr j;
        while !j < n && is_digit input.[!j] do
          incr j
        done
      end;
      let text = String.sub input !i (!j - !i) in
      if is_float then emit (FLOAT (float_of_string text))
      else emit (INT (int_of_string text));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while
        !j < n
        && (is_ident_char input.[!j]
           (* a '.' inside an identifier is kept only when followed by
              another identifier character (e.g. "v1.2"); a '.' at the
              end of a word is the clause terminator *)
           || (input.[!j] = '.' && !j + 1 < n && is_ident_char input.[!j + 1])
           )
      do
        incr j
      done;
      let text = String.sub input !i (!j - !i) in
      (match text.[0] with
       | 'A' .. 'Z' | '_' -> emit (VAR text)
       | _ -> emit (IDENT text));
      i := !j
    end
    else if c = '.' then (emit PERIOD; incr i)
    else fail !i (Printf.sprintf "unexpected character %C" c)
  done;
  emit EOF;
  List.rev !out

let token_to_string = function
  | IDENT s -> s
  | VAR s -> s
  | STRING s -> Printf.sprintf "%S" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | PERIOD -> "."
  | TURNSTILE -> ":-"
  | BANG -> "!"
  | QMARK -> "?"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | ARROW -> "->"
  | COLON -> ":"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
