(** Datalog± programs: dependencies plus an extensional database.

    A program bundles the rule sets ΣM (TGDs, EGDs, negative
    constraints) with the predicate inventory.  Arities are inferred
    from all rule atoms and validated for consistency.  The extensional
    data itself lives in a {!Mdqa_relational.Instance.t} supplied to
    the chase / query answering entry points. *)

type t = private {
  tgds : Tgd.t list;
  egds : Egd.t list;
  ncs : Nc.t list;
  facts : Atom.t list;  (** ground facts bundled with the program text *)
}

val make :
  ?tgds:Tgd.t list ->
  ?egds:Egd.t list ->
  ?ncs:Nc.t list ->
  ?facts:Atom.t list ->
  unit ->
  t
(** @raise Invalid_argument if a predicate is used with two different
    arities or a listed fact is not ground. *)

val arity_of : t -> string -> int option

val predicates : t -> (string * int) list
(** All predicates with arities, sorted by name. *)

val positions : t -> (string * int) list
(** All positions [(pred, i)], sorted. *)

val idb_predicates : t -> string list
(** Predicates occurring in some TGD head. *)

val edb_predicates : t -> string list
(** Predicates never occurring in a TGD head. *)

val tgds_with_head : t -> string -> Tgd.t list

val predicate_graph : t -> (string * string) list
(** Edges body-pred → head-pred over all TGDs (deduplicated). *)

val predicate_graph_acyclic : t -> bool
(** No directed cycle in {!predicate_graph}: unfolding-based rewriting
    terminates. *)

val relevant_tgds : t -> goals:string list -> Tgd.t list
(** The TGDs that can contribute to deriving facts over the [goals]
    predicates, over the EGD/NC body predicates (their enforcement
    needs those facts), transitively through the predicate graph.
    Sound for goal-directed chasing: dropping the others cannot change
    certain answers over [goals]. *)

val restrict_to_goals : t -> goals:string list -> t
(** The program with only {!relevant_tgds} (EGDs, NCs and facts kept). *)

val instance_of_facts : t -> Mdqa_relational.Instance.t
(** Fresh instance holding the program's bundled facts, with all
    program predicates declared (plain attribute names [c0..cn]). *)

val declare_predicates : t -> Mdqa_relational.Instance.t -> unit
(** Declare every program predicate in an existing instance, so the
    chase can write to them.  Existing relations are kept; a predicate
    already present with a different arity raises [Invalid_argument]. *)

val schema_for : t -> string -> Mdqa_relational.Rel_schema.t option

val pp : Format.formatter -> t -> unit
