(** Core computation for chased instances.

    The chase produces a universal model that may contain redundant
    labeled nulls — e.g. the oblivious chase re-derives facts already
    witnessed by extensional data.  The {e core} is the smallest
    instance homomorphically equivalent to it; certain answers are
    unchanged but the instance (and every null in it) is necessary.

    Implementation: greedy retraction by single-null folding — find a
    null [n] and a value [v] (constant or other null) such that
    substituting [v] for [n] maps the instance into itself, apply, and
    repeat to fixpoint.  This reaches the core in the common cases (in
    particular whenever redundant nulls can be eliminated one at a
    time); in pathological cases needing simultaneous substitutions the
    result is still a sound retract: homomorphically equivalent and no
    larger.  The result is tested to be hom-equivalent to the input. *)

val compute :
  ?max_folds:int -> Mdqa_relational.Instance.t -> Mdqa_relational.Instance.t
(** A retract of the instance with redundant nulls folded away.  The
    input is not mutated.  [max_folds] bounds the number of folding
    steps (default 10_000). *)

val hom_equivalent :
  Mdqa_relational.Instance.t -> Mdqa_relational.Instance.t -> bool
(** Do homomorphisms exist in both directions (treating labeled nulls
    as variables and constants as rigid)?  Used by the tests to verify
    {!compute}. *)

val null_count : Mdqa_relational.Instance.t -> int
(** Number of distinct labeled nulls in the instance. *)
