(** Membership tests for the syntactic classes of the Datalog± family
    discussed in the paper (§II–III), plus a one-shot classification
    report used by the [report classes] experiment (C1).

    The inclusions relevant here: linear ⊆ guarded ⊆ weakly guarded,
    sticky ⊆ weakly sticky, and weakly acyclic ⊆ weakly sticky (every
    position has finite rank, so repeated marked variables are always
    at ∏_F positions). *)

val is_linear : Program.t -> bool
(** Every TGD has a single body atom. *)

val is_guarded : Program.t -> bool
(** Every TGD has a body atom containing all its body variables. *)

val is_weakly_guarded : Program.t -> bool
(** Every TGD has a body atom containing all body variables that occur
    only at affected positions. *)

val is_sticky : Program.t -> bool
val is_weakly_sticky : Program.t -> bool
val is_weakly_acyclic : Program.t -> bool

val is_warded : Program.t -> bool
(** Warded Datalog± (Gottlob–Pieris; the Vadalog core): call a body
    variable {e harmful} when every body occurrence is at an affected
    position, and {e dangerous} when it is harmful and propagates to
    the head.  A program is warded when, per rule, all dangerous
    variables occur together in one body atom (the {e ward}) that
    shares only harmless variables with the rest of the body. *)

type report = {
  linear : bool;
  guarded : bool;
  weakly_guarded : bool;
  sticky : bool;
  weakly_sticky : bool;
  weakly_acyclic : bool;
  warded : bool;
}

val classify : Program.t -> report

val pp_report : Format.formatter -> report -> unit
