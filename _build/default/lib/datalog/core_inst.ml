module Instance = Mdqa_relational.Instance
module Relation = Mdqa_relational.Relation
module Tuple = Mdqa_relational.Tuple
module Value = Mdqa_relational.Value

let nulls_of inst =
  let acc = ref Value.Set.empty in
  Instance.iter_facts
    (fun _ t ->
      List.iter
        (fun v -> if Value.is_null v then acc := Value.Set.add v !acc)
        (Tuple.to_list t))
    inst;
  !acc

let null_count inst = Value.Set.cardinal (nulls_of inst)

let domain_of inst =
  let acc = ref Value.Set.empty in
  Instance.iter_facts
    (fun _ t ->
      List.iter (fun v -> acc := Value.Set.add v !acc) (Tuple.to_list t))
    inst;
  !acc

(* Does substituting [v] for null [n] map the instance into itself?
   Only tuples containing [n] change; each image must already be
   present. *)
let folds_into inst ~n ~v =
  let ok = ref true in
  let subst x = if Value.equal x n then v else x in
  List.iter
    (fun rel ->
      if !ok then
        Relation.iter
          (fun t ->
            if !ok && Tuple.exists (Value.equal n) t then
              if not (Relation.mem rel (Tuple.map subst t)) then ok := false)
          rel)
    (Instance.relations inst);
  !ok

let compute ?(max_folds = 10_000) start =
  let inst = Instance.copy start in
  let folds = ref 0 in
  let progress = ref true in
  while !progress && !folds < max_folds do
    progress := false;
    let nulls = Value.Set.elements (nulls_of inst) in
    let domain = Value.Set.elements (domain_of inst) in
    (* prefer folding into constants, then into other nulls *)
    let candidates =
      List.filter Value.is_constant domain
      @ List.filter Value.is_null domain
    in
    (try
       List.iter
         (fun n ->
           List.iter
             (fun v ->
               if (not (Value.equal n v)) && folds_into inst ~n ~v then begin
                 Instance.map_values inst (fun x ->
                     if Value.equal x n then v else x);
                 incr folds;
                 progress := true;
                 raise Exit
               end)
             candidates)
         nulls
     with Exit -> ())
  done;
  inst

(* Homomorphism check: the source instance, with nulls read as
   variables, must match into the target. *)
let hom_exists ~source ~target =
  let atoms =
    let acc = ref [] in
    Instance.iter_facts
      (fun pred t ->
        let args =
          List.map
            (fun v ->
              match v with
              | Value.Null k -> Term.Var (Printf.sprintf "_n%d" k)
              | _ -> Term.Const v)
            (Tuple.to_list t)
        in
        acc := Atom.make pred args :: !acc)
      source;
    !acc
  in
  atoms = [] || Eval.exists target atoms

let hom_equivalent a b = hom_exists ~source:a ~target:b && hom_exists ~source:b ~target:a
