type t = {
  name : string;
  body : Atom.t list;
  cmps : Atom.Cmp.t list;
}

let counter = ref 0

let body_vars_of body =
  List.fold_left
    (fun acc a -> Term.Var_set.union acc (Atom.vars a))
    Term.Var_set.empty body

let make ?name ?(cmps = []) body =
  if body = [] then invalid_arg "Nc.make: empty body";
  let bv = body_vars_of body in
  List.iter
    (fun c ->
      Term.Var_set.iter
        (fun v ->
          if not (Term.Var_set.mem v bv) then
            invalid_arg
              (Printf.sprintf
                 "Nc.make: comparison variable %s not in body" v))
        (Atom.Cmp.vars c))
    cmps;
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "nc%d" !counter
  in
  { name; body; cmps }

let body_vars t = body_vars_of t.body

let pp ppf t =
  let pp_body ppf () =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Atom.pp ppf t.body;
    List.iter (fun c -> Format.fprintf ppf ", %a" Atom.Cmp.pp c) t.cmps
  in
  Format.fprintf ppf "! :- %a" pp_body ()
