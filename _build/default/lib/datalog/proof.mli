(** [DeterministicWSQAns]: deterministic top-down query answering for
    weakly-sticky Datalog± (paper §IV).

    The algorithm searches for accepting resolution proof schemas: the
    query atoms are resolved left to right, each either by matching a
    ground fact of the extensional database, or by applying a TGD whose
    (renamed-apart) head unifies with the atom, pushing the TGD body as
    new subgoals.  Decisions are kept on an explicit stack (here: the
    OCaml call stack of a backtracking search) and undone on failure.

    Existential head variables are instantiated with fresh labeled
    nulls before unification, so an existential can witness a query
    variable but can never equal an extensional constant.  When a rule
    with a multi-atom head is applied, the sibling head atoms of the
    same application are recorded as {e lemmas} available to later
    goals — this is what makes proofs involving one shared null across
    several atoms (rule (10) of the paper) complete.

    Open queries are answered by the same search: answer variables pick
    up constants while matching database facts, exactly as the paper
    describes ("possible substitutions ... are derived by the ground
    atoms in the extensional database").  Answers containing nulls are
    not certain and are filtered.

    EGDs and negative constraints are not used by the search: apply it
    to programs whose EGDs are separable (see {!Separability}) and
    whose consistency has been checked (e.g. by {!Chase.run}).

    Proof depth is polynomially bounded for WS programs; [max_depth]
    bounds rule applications per branch and [max_steps] bounds the
    total search as engineering safety. *)

type result = {
  answers : Mdqa_relational.Tuple.t list;
      (** certain answers (null-free head images), sorted, deduplicated *)
  complete : bool;
      (** false if the search was truncated by [max_steps] *)
  steps : int;  (** resolution steps performed *)
}

val answer :
  ?max_depth:int ->
  ?max_steps:int ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  Query.t ->
  result
(** Defaults: [max_depth] 32, [max_steps] 2_000_000. *)

val entails :
  ?max_depth:int ->
  ?max_steps:int ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  Query.t ->
  bool
(** Boolean conjunctive query answering: is there an accepting
    resolution proof schema?  (short-circuits on the first proof) *)
