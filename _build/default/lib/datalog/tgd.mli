(** Tuple-generating dependencies (TGDs):
    [∀x̄ ∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))].

    Heads may have several atoms (the paper's rule (10) shares an
    existential unit variable between [InstitutionUnit] and
    [PatientUnit]).  Variables appearing in the head but not in the
    body are implicitly existentially quantified. *)

type t = private {
  name : string;  (** identifier used in proofs/diagnostics *)
  body : Atom.t list;
  head : Atom.t list;
}

val make : ?name:string -> body:Atom.t list -> head:Atom.t list -> unit -> t
(** @raise Invalid_argument if the body or head is empty, or if a head
    contains no atom. TGDs are safe by construction: head variables not
    occurring in the body are existential. *)

val body_vars : t -> Term.Var_set.t
val head_vars : t -> Term.Var_set.t

val existential_vars : t -> Term.Var_set.t
(** Head variables not occurring in the body ([z̄]). *)

val frontier : t -> Term.Var_set.t
(** Body variables occurring in the head ([x̄]). *)

val is_full : t -> bool
(** No existential variables. *)

val repeated_body_vars : t -> Term.Var_set.t
(** Variables with ≥ 2 occurrences in the body (counting occurrences,
    not atoms). *)

val rename : suffix:string -> t -> t
(** Rename all variables apart, e.g. for resolution steps. *)

val head_preds : t -> string list
val body_preds : t -> string list

val pp : Format.formatter -> t -> unit
