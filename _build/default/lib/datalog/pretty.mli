(** Pretty-printer emitting the surface syntax accepted by {!Parser}.

    [Parser.parse_string (Pretty.program_to_string p)] reconstructs a
    program structurally equal to [p] (rule names aside) — the
    round-trip is property-tested. *)

val term : Format.formatter -> Term.t -> unit
val atom : Format.formatter -> Atom.t -> unit
val tgd : Format.formatter -> Tgd.t -> unit
val egd : Format.formatter -> Egd.t -> unit
val nc : Format.formatter -> Nc.t -> unit
val query : Format.formatter -> Query.t -> unit
val program : Format.formatter -> Program.t -> unit

val program_to_string : Program.t -> string
val query_to_string : Query.t -> string
