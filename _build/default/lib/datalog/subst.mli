(** Substitutions: finite maps from variables to terms.

    Substitutions are kept idempotent by {!bind} (the bound term is
    walked through the substitution first and existing bindings are
    never overwritten), which is what unification needs. *)

type t

val empty : t
val is_empty : t -> bool

val find : t -> string -> Term.t option

val walk : t -> Term.t -> Term.t
(** Follow variable bindings until a constant or an unbound variable. *)

val bind : t -> string -> Term.t -> t option
(** [bind s v t] adds [v ↦ walk s t].  Returns [None] if [v] is already
    bound to a different term (after walking), [Some s'] otherwise.
    Binding [v] to itself is the identity. *)

val bind_exn : t -> string -> Term.t -> t
(** @raise Invalid_argument where {!bind} returns [None]. *)

val of_list : (string * Term.t) list -> t
(** @raise Invalid_argument on conflicting bindings. *)

val to_list : t -> (string * Term.t) list
(** Bindings sorted by variable name. *)

val apply_term : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t
val apply_atoms : t -> Atom.t list -> Atom.t list
val apply_cmp : t -> Atom.Cmp.t -> Atom.Cmp.t

val domain : t -> Term.Var_set.t

val is_ground_on : t -> Term.Var_set.t -> bool
(** All the given variables are bound to constants. *)

val value_of : t -> string -> Mdqa_relational.Value.t option
(** The constant bound to a variable, if it is bound to one. *)

val restrict : t -> Term.Var_set.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
