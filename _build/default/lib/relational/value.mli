(** Domain values for database instances.

    Values populate tuples of relations. Besides ordinary constants
    (symbols, integers, reals) the domain contains {e labeled nulls},
    the fresh placeholder values invented by the Datalog± chase when a
    tuple-generating dependency with existential head variables fires.
    Two labeled nulls are equal iff they carry the same label. *)

type t =
  | Sym of string  (** symbolic constant, e.g. ["Tom Waits"], ["W1"] *)
  | Int of int  (** integer constant *)
  | Real of float  (** floating-point constant *)
  | Null of int  (** labeled null [⊥k], invented by the chase *)

val compare : t -> t -> int
(** Total order: nulls sort after constants; constants by kind then value. *)

val equal : t -> t -> bool

val hash : t -> int

val is_null : t -> bool
(** [is_null v] is [true] iff [v] is a labeled null. *)

val is_constant : t -> bool
(** [is_constant v] is [not (is_null v)]. *)

val sym : string -> t
val int : int -> t
val real : float -> t

val pp : Format.formatter -> t -> unit
(** Nulls print as [⊥k]; symbols print bare (quoted if they contain
    spaces or punctuation); numbers print canonically. *)

val to_string : t -> string

val of_string : string -> t
(** Parse a value from its surface form: [⊥k] or [_:k] as nulls,
    integer/float literals as numbers, quoted or bare words as symbols. *)

module Fresh : sig
  (** Generator of fresh labeled nulls.

      A generator is a mutable counter; chases own one each so that
      runs are reproducible and independent. *)

  type gen

  val create : ?start:int -> unit -> gen

  val next : gen -> t
  (** [next g] is a labeled null unused by [g] so far. *)

  val count : gen -> int
  (** Number of nulls handed out so far. *)
end

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
