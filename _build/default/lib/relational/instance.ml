type t = { rels : (string, Relation.t) Hashtbl.t }

let create () = { rels = Hashtbl.create 16 }

let find i name = Hashtbl.find_opt i.rels name
let get i name =
  match find i name with Some r -> r | None -> raise Not_found

let mem i name = Hashtbl.mem i.rels name

let declare i s =
  let n = Rel_schema.name s in
  match find i n with
  | Some r ->
    if not (Rel_schema.equal (Relation.schema r) s) then
      invalid_arg
        (Printf.sprintf "Instance.declare: schema clash for %s" n);
    r
  | None ->
    let r = Relation.create s in
    Hashtbl.add i.rels n r;
    r

let of_relations rels =
  let i = create () in
  List.iter
    (fun r ->
      let n = Relation.name r in
      if Hashtbl.mem i.rels n then
        invalid_arg
          (Printf.sprintf "Instance.of_relations: duplicate relation %s" n);
      Hashtbl.add i.rels n r)
    rels;
  i

let add_tuple i name t = Relation.add (get i name) t

let relations i =
  Hashtbl.fold (fun _ r acc -> r :: acc) i.rels []
  |> List.sort (fun a b -> String.compare (Relation.name a) (Relation.name b))

let predicate_names i = List.map Relation.name (relations i)

let total_tuples i =
  Hashtbl.fold (fun _ r acc -> acc + Relation.cardinal r) i.rels 0

let iter_facts f i =
  List.iter (fun r -> Relation.iter (f (Relation.name r)) r) (relations i)

let map_values i f = Hashtbl.iter (fun _ r -> Relation.map_values r f) i.rels

let copy i =
  let j = create () in
  Hashtbl.iter (fun n r -> Hashtbl.add j.rels n (Relation.copy r)) i.rels;
  j

let equal a b =
  let names i =
    Hashtbl.fold (fun n _ acc -> n :: acc) i.rels [] |> List.sort compare
  in
  names a = names b
  && List.for_all
       (fun n -> Relation.equal (get a n) (get b n))
       (names a)

let merge_into ~dst ~src =
  List.iter
    (fun r ->
      let d = declare dst (Relation.schema r) in
      Relation.iter (fun t -> ignore (Relation.add d t)) r)
    (relations src)

let pp ppf i =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun k r ->
      if k > 0 then Format.fprintf ppf "@,";
      Relation.pp ppf r)
    (relations i);
  Format.fprintf ppf "@]"
