(** Relations: mutable sets of tuples under a schema, with per-position
    hash indexes.

    A relation enforces the arity of its schema on insertion and
    maintains secondary indexes (position → value → tuples) so that
    scans with partial bindings — the workhorse of conjunctive-query
    evaluation and of the chase — avoid full scans. *)

type t

val create : Rel_schema.t -> t
(** Fresh empty relation. *)

val of_tuples : Rel_schema.t -> Tuple.t list -> t

val schema : t -> Rel_schema.t
val name : t -> string
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val add : t -> Tuple.t -> bool
(** [add r t] inserts [t]; returns [true] iff [t] was not present.
    @raise Invalid_argument on arity mismatch. *)

val mem : t -> Tuple.t -> bool
val remove : t -> Tuple.t -> bool
(** Returns [true] iff the tuple was present. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list
(** Tuples in ascending order (deterministic). *)

val to_set : t -> Tuple.Set.t

val scan : t -> (int * Value.t) list -> Tuple.t list
(** [scan r binding] returns the tuples agreeing with all [(pos, v)]
    pairs of [binding], using the most selective available index.
    [scan r \[\]] lists all tuples. *)

val scan_estimate : t -> (int * Value.t) list -> int
(** Upper bound on [List.length (scan r binding)] obtained from the
    index bucket of the first bound position ([cardinal] when the
    binding is empty) — the selectivity estimate driving join
    ordering. *)

val map_values : t -> (Value.t -> Value.t) -> unit
(** Rewrite every value in place through the function (rebuilds
    indexes); used by EGD enforcement to merge labeled nulls. *)

val filter : (Tuple.t -> bool) -> t -> t
(** New relation (same schema) with the matching tuples. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same schema and same tuple set. *)

val pp : Format.formatter -> t -> unit
