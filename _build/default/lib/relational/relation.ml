type bucket = { mutable size : int; mutable items : Tuple.t list }

type index = (Value.t, bucket) Hashtbl.t

type t = {
  schema : Rel_schema.t;
  mutable tuples : Tuple.Set.t;
  mutable indexes : (int * index) list;  (* one per position, built lazily *)
}

let create schema = { schema; tuples = Tuple.Set.empty; indexes = [] }

let schema r = r.schema
let name r = Rel_schema.name r.schema
let arity r = Rel_schema.arity r.schema
let cardinal r = Tuple.Set.cardinal r.tuples
let is_empty r = Tuple.Set.is_empty r.tuples

let index_insert (idx : index) key t =
  match Hashtbl.find_opt idx key with
  | Some b ->
    b.size <- b.size + 1;
    b.items <- t :: b.items
  | None -> Hashtbl.add idx key { size = 1; items = [ t ] }

let build_index r pos =
  let idx : index = Hashtbl.create (max 16 (cardinal r)) in
  Tuple.Set.iter (fun t -> index_insert idx (Tuple.get t pos) t) r.tuples;
  r.indexes <- (pos, idx) :: r.indexes;
  idx

let find_index r pos = List.assoc_opt pos r.indexes

let check_arity r t =
  if Tuple.arity t <> arity r then
    invalid_arg
      (Printf.sprintf "Relation %s: arity mismatch (schema %d, tuple %d)"
         (name r) (arity r) (Tuple.arity t))

let add r t =
  check_arity r t;
  if Tuple.Set.mem t r.tuples then false
  else begin
    r.tuples <- Tuple.Set.add t r.tuples;
    List.iter (fun (pos, idx) -> index_insert idx (Tuple.get t pos) t)
      r.indexes;
    true
  end

let of_tuples schema ts =
  let r = create schema in
  List.iter (fun t -> ignore (add r t)) ts;
  r

let mem r t = Tuple.Set.mem t r.tuples

let remove r t =
  if not (Tuple.Set.mem t r.tuples) then false
  else begin
    r.tuples <- Tuple.Set.remove t r.tuples;
    (* Dropping the indexes is simpler than deleting from per-value
       buckets; removals are rare (EGD merges rebuild wholesale). *)
    r.indexes <- [];
    true
  end

let iter f r = Tuple.Set.iter f r.tuples
let fold f r init = Tuple.Set.fold f r.tuples init
let to_list r = Tuple.Set.elements r.tuples
let to_set r = r.tuples

let empty_bucket = { size = 0; items = [] }

(* The index bucket for one bound position (built on demand). *)
let bucket r (pos, v) =
  let idx =
    match find_index r pos with Some i -> i | None -> build_index r pos
  in
  match Hashtbl.find_opt idx v with Some b -> b | None -> empty_bucket

(* Pick the most selective bound position: smallest index bucket. *)
let best_bucket r binding =
  match binding with
  | [] -> None
  | b0 :: rest ->
    let best =
      List.fold_left
        (fun ((_, best_b) as best) b ->
          let c = bucket r b in
          if c.size < best_b.size then (b, c) else best)
        (b0, bucket r b0) rest
    in
    Some best

let scan r binding =
  match best_bucket r binding with
  | None -> to_list r
  | Some (chosen, b) ->
    let rest = List.filter (fun bd -> bd != chosen) binding in
    if rest = [] then b.items
    else
      List.filter
        (fun t ->
          List.for_all (fun (p, x) -> Value.equal (Tuple.get t p) x) rest)
        b.items

let scan_estimate r binding =
  match best_bucket r binding with
  | None -> cardinal r
  | Some (_, b) -> b.size

let map_values r f =
  let tuples' =
    Tuple.Set.fold
      (fun t acc -> Tuple.Set.add (Tuple.map f t) acc)
      r.tuples Tuple.Set.empty
  in
  r.tuples <- tuples';
  r.indexes <- []

let filter p r =
  let r' = create r.schema in
  iter (fun t -> if p t then ignore (add r' t)) r;
  r'

let copy r = { schema = r.schema; tuples = r.tuples; indexes = [] }

let equal a b =
  Rel_schema.equal a.schema b.schema && Tuple.Set.equal a.tuples b.tuples

let pp ppf r =
  Format.fprintf ppf "@[<v2>%s = {" (name r);
  iter (fun t -> Format.fprintf ppf "@,%a" Tuple.pp t) r;
  Format.fprintf ppf "@]@,}"
