(** ASCII rendering of relations as the paper's numbered tables.

    Used by the bench/report harness to regenerate Tables I–V of the
    paper and by the examples for readable output. *)

val render : ?title:string -> ?numbered:bool -> Relation.t -> string
(** Render a relation as an aligned text table.  With [numbered] (the
    default) rows get a 1-based row-number column, matching the paper's
    presentation.  Rows appear in the relation's deterministic tuple
    order. *)

val render_rows :
  ?title:string -> header:string list -> string list list -> string
(** Lower-level renderer for pre-stringified rows. *)

val print : ?title:string -> ?numbered:bool -> Relation.t -> unit
(** [render] to stdout. *)
