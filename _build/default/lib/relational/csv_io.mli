(** Minimal CSV-style persistence for relations and instances.

    Format: one header line with attribute names, then one line per
    tuple.  Cells are separated by commas; cells containing commas,
    quotes or newlines are double-quoted with ["" ] escaping.  Values
    are parsed back with {!Value.of_string} (so numbers round-trip as
    numbers, nulls as nulls). *)

val cell_of_value : Value.t -> string
val value_of_cell : string -> Value.t

val relation_to_string : Relation.t -> string

val relation_of_string : name:string -> string -> Relation.t
(** Parse a relation from CSV text; the schema is all-plain attributes
    named by the header.
    @raise Failure on ragged rows or empty input. *)

val save_relation : string -> Relation.t -> unit
(** [save_relation path r] writes [r] to [path]. *)

val load_relation : name:string -> string -> Relation.t
(** [load_relation ~name path]. @raise Sys_error / Failure. *)
