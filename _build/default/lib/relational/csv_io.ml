let needs_quote s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let cell_of_value v =
  let s = Value.to_string v in
  if needs_quote s then quote s else s

let value_of_cell s = Value.of_string s

(* Split one CSV line honouring double-quoted cells. *)
let split_line line =
  let n = String.length line in
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let rec go i in_quotes =
    if i >= n then begin
      cells := Buffer.contents buf :: !cells
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then go (i + 1) true
      else if c = ',' then begin
        cells := Buffer.contents buf :: !cells;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !cells

let relation_to_string r =
  let s = Relation.schema r in
  let buf = Buffer.create 256 in
  let header =
    List.map
      (fun a ->
        let n = Attribute.name a in
        if needs_quote n then quote n else n)
      (Rel_schema.attributes s)
  in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat "," (List.map cell_of_value (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    r;
  Buffer.contents buf

let relation_of_string ~name text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           (* tolerate CRLF *)
           if l <> "" && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> failwith "Csv_io.relation_of_string: empty input"
  | header :: rows ->
    let attrs = List.map Attribute.plain (split_line header) in
    let schema = Rel_schema.make name attrs in
    let r = Relation.create schema in
    List.iteri
      (fun k line ->
        let cells = split_line line in
        if List.length cells <> Rel_schema.arity schema then
          failwith
            (Printf.sprintf
               "Csv_io.relation_of_string: row %d has %d cells, want %d"
               (k + 1) (List.length cells) (Rel_schema.arity schema));
        ignore (Relation.add r (Tuple.of_list (List.map value_of_cell cells))))
      rows;
    r

let save_relation path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (relation_to_string r))

let load_relation ~name path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      relation_of_string ~name text)
