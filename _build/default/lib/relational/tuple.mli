(** Tuples: immutable arrays of values.

    A tuple does not carry its schema; relations pair tuples with a
    schema and enforce arity. *)

type t

val of_list : Value.t list -> t
val of_array : Value.t array -> t
(** The array is copied. *)

val to_list : t -> Value.t list
val arity : t -> int

val get : t -> int -> Value.t
(** @raise Invalid_argument if the position is out of range. *)

val set : t -> int -> Value.t -> t
(** Functional update: a new tuple with position [i] replaced. *)

val project : t -> int list -> t
(** [project t ps] keeps positions [ps] in the given order. *)

val append : t -> t -> t

val exists : (Value.t -> bool) -> t -> bool
val for_all : (Value.t -> bool) -> t -> bool
val map : (Value.t -> Value.t) -> t -> t

val has_null : t -> bool
(** True iff some component is a labeled null. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [(v1, v2, ...)]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
