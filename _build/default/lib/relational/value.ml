type t =
  | Sym of string
  | Int of int
  | Real of float
  | Null of int

let kind_rank = function
  | Sym _ -> 0
  | Int _ -> 1
  | Real _ -> 2
  | Null _ -> 3

let compare a b =
  match a, b with
  | Sym x, Sym y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Null x, Null y -> Int.compare x y
  | _ -> Int.compare (kind_rank a) (kind_rank b)

let equal a b = compare a b = 0

let hash = function
  | Sym s -> Hashtbl.hash (0, s)
  | Int i -> Hashtbl.hash (1, i)
  | Real r -> Hashtbl.hash (2, r)
  | Null n -> Hashtbl.hash (3, n)

let is_null = function Null _ -> true | Sym _ | Int _ | Real _ -> false
let is_constant v = not (is_null v)

let sym s = Sym s
let int i = Int i
let real r = Real r

(* A symbol needs quoting when it could be mistaken for another lexical
   class: numbers, nulls, or anything with spaces/punctuation. *)
let bare_symbol s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '/' | ':' | '.' ->
           true
         | _ -> false)
       s

let pp ppf = function
  | Sym s -> if bare_symbol s then Format.pp_print_string ppf s
             else Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i
  | Real r -> Format.fprintf ppf "%g" r
  | Null n -> Format.fprintf ppf "\xe2\x8a\xa5%d" n

let to_string v = Format.asprintf "%a" pp v

let of_string s =
  let n = String.length s in
  if n = 0 then Sym ""
  else if n >= 4 && String.sub s 0 3 = "\xe2\x8a\xa5" then
    match int_of_string_opt (String.sub s 3 (n - 3)) with
    | Some k -> Null k
    | None -> Sym s
  else if n >= 3 && s.[0] = '_' && s.[1] = ':' then
    match int_of_string_opt (String.sub s 2 (n - 2)) with
    | Some k -> Null k
    | None -> Sym s
  else if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Sym (Scanf.sscanf s "%S" Fun.id)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some r -> Real r
      | None -> Sym s)

module Fresh = struct
  type gen = { mutable next_id : int; start : int }

  let create ?(start = 1) () = { next_id = start; start }
  let next g =
    let v = Null g.next_id in
    g.next_id <- g.next_id + 1;
    v

  let count g = g.next_id - g.start
end

module Ordered = struct
  type nonrec t = t
  let compare = compare
end

module Map = Map.Make (Ordered)
module Set = Set.Make (Ordered)
