type kind =
  | Plain
  | Categorical of { dimension : string; category : string }

type t = { name : string; kind : kind }

let plain name = { name; kind = Plain }

let categorical name ~dimension ~category =
  { name; kind = Categorical { dimension; category } }

let name a = a.name
let kind a = a.kind

let is_categorical a =
  match a.kind with Categorical _ -> true | Plain -> false

let compare_kind k1 k2 =
  match k1, k2 with
  | Plain, Plain -> 0
  | Plain, Categorical _ -> -1
  | Categorical _, Plain -> 1
  | Categorical c1, Categorical c2 ->
    let c = String.compare c1.dimension c2.dimension in
    if c <> 0 then c else String.compare c1.category c2.category

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else compare_kind a.kind b.kind

let equal a b = compare a b = 0

let pp ppf a =
  match a.kind with
  | Plain -> Format.pp_print_string ppf a.name
  | Categorical { dimension; category } ->
    Format.fprintf ppf "%s@%s.%s" a.name dimension category
