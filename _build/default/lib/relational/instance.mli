(** Database instances: a mutable mapping from predicate names to
    relations.

    An instance is the extensional store used both for plain databases
    (the dirty instance D, contextual data, dimension extensions) and
    as the working set of the Datalog± chase. *)

type t

val create : unit -> t

val of_relations : Relation.t list -> t
(** @raise Invalid_argument on duplicate relation names. *)

val declare : t -> Rel_schema.t -> Relation.t
(** [declare i s] returns the relation named [Rel_schema.name s],
    creating it empty if absent.
    @raise Invalid_argument if a relation with that name exists with a
    different schema. *)

val find : t -> string -> Relation.t option
val get : t -> string -> Relation.t
(** @raise Not_found if absent. *)

val mem : t -> string -> bool

val add_tuple : t -> string -> Tuple.t -> bool
(** Insert into the named relation ({!get} semantics); returns whether
    the tuple is new. *)

val relations : t -> Relation.t list
(** All relations, sorted by name (deterministic). *)

val predicate_names : t -> string list

val total_tuples : t -> int

val iter_facts : (string -> Tuple.t -> unit) -> t -> unit
(** Iterate over all facts, by relation name then tuple order. *)

val map_values : t -> (Value.t -> Value.t) -> unit
(** Rewrite every value of every relation (EGD null merging). *)

val copy : t -> t
(** Deep copy: relations are independent of the original's. *)

val equal : t -> t -> bool

val merge_into : dst:t -> src:t -> unit
(** Add all of [src]'s relations and facts into [dst].
    @raise Invalid_argument on schema clash. *)

val pp : Format.formatter -> t -> unit
