(** Relation schemas: a relation name plus an ordered attribute list.

    Schemas are immutable.  Positions are 0-based and used throughout
    the Datalog± layer to identify attribute occurrences ("positions"
    in the Calì–Gottlob–Pieris sense, written [R\[i\]]). *)

type t

val make : string -> Attribute.t list -> t
(** [make name attrs] builds a schema.
    @raise Invalid_argument on duplicate attribute names. *)

val of_names : string -> string list -> t
(** Schema with all-plain attributes of the given names. *)

val name : t -> string
val attributes : t -> Attribute.t list
val arity : t -> int

val attribute : t -> int -> Attribute.t
(** @raise Invalid_argument if the position is out of range. *)

val position_of : t -> string -> int option
(** Position of the attribute with the given name, if any. *)

val categorical_positions : t -> int list
(** Positions of categorical attributes, ascending. *)

val plain_positions : t -> int list
(** Positions of plain (non-categorical) attributes, ascending. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
