(** Attributes of relation schemas.

    The extended multidimensional model distinguishes {e categorical}
    attributes — whose values are members of a category of some
    dimension — from ordinary ({e plain}) attributes whose values come
    from an arbitrary domain.  The relational substrate records the
    distinction so the upper layers can validate rules and constraints;
    it does not interpret it. *)

type kind =
  | Plain  (** non-categorical attribute: arbitrary domain *)
  | Categorical of { dimension : string; category : string }
      (** attribute whose values are members of [category] in
          [dimension] *)

type t = { name : string; kind : kind }

val plain : string -> t
val categorical : string -> dimension:string -> category:string -> t

val name : t -> string
val kind : t -> kind
val is_categorical : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints [name] for plain attributes and [name@dimension.category]
    for categorical ones. *)
