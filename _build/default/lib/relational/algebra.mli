(** Relational algebra over {!Relation.t}.

    All operators are functional: they allocate result relations and
    never mutate their inputs.  They are used by the context layer to
    materialize quality versions and by tests as an executable
    semantics to validate the query evaluator against. *)

type predicate = Tuple.t -> bool

val select : predicate -> Relation.t -> Relation.t

val select_eq : int -> Value.t -> Relation.t -> Relation.t
(** [select_eq pos v r] keeps tuples with [v] at [pos] (index-backed). *)

val project : ?name:string -> int list -> Relation.t -> Relation.t
(** [project ps r] keeps positions [ps] in order; duplicates collapse.
    The result schema keeps the projected attributes; [name] overrides
    the result relation name (default: input name). *)

val rename : string -> Relation.t -> Relation.t
(** Change the relation name, keep attributes and tuples. *)

val union : Relation.t -> Relation.t -> Relation.t
(** @raise Invalid_argument on arity mismatch.  Result uses the left
    schema. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Tuples of the left relation absent from the right.
    @raise Invalid_argument on arity mismatch. *)

val intersect : Relation.t -> Relation.t -> Relation.t

val product : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Cartesian product; attribute names of the right operand are
    prefixed with its relation name on clash. *)

val join : ?name:string -> (int * int) list -> Relation.t -> Relation.t
  -> Relation.t
(** [join eqs l r] is the equi-join on pairs [(li, ri)] of positions;
    the result concatenates the full tuples of both sides (index-backed
    hash join on the first pair). *)

val natural_join : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Equi-join on all attribute names common to both schemas; common
    attributes appear once (from the left side). *)
