let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

let render_rows ?title ~header rows =
  let cols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> cols then
        invalid_arg
          (Printf.sprintf "Table_fmt.render_rows: row %d has %d cells, want %d"
             i (List.length row) cols))
    rows;
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let line c =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) c) widths)
    ^ "+"
  in
  let render_row row =
    "| "
    ^ String.concat " | " (List.map2 (fun w c -> pad c w) widths row)
    ^ " |"
  in
  let buf = Buffer.create 256 in
  (match title with
   | Some t ->
     Buffer.add_string buf t;
     Buffer.add_char buf '\n'
   | None -> ());
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render ?title ?(numbered = true) r =
  let s = Relation.schema r in
  let header =
    List.map Attribute.name (Rel_schema.attributes s)
  in
  let header = if numbered then "#" :: header else header in
  let rows =
    List.mapi
      (fun i t ->
        let cells = List.map Value.to_string (Tuple.to_list t) in
        if numbered then string_of_int (i + 1) :: cells else cells)
      (Relation.to_list r)
  in
  let title =
    match title with Some t -> Some t | None -> Some (Relation.name r)
  in
  render_rows ?title ~header rows

let print ?title ?numbered r = print_string (render ?title ?numbered r)
