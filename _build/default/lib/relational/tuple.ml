type t = Value.t array

let of_list = Array.of_list
let of_array a = Array.copy a
let to_list = Array.to_list
let arity = Array.length

let get t i =
  if i < 0 || i >= Array.length t then
    invalid_arg (Printf.sprintf "Tuple.get: position %d out of range" i);
  t.(i)

let set t i v =
  if i < 0 || i >= Array.length t then
    invalid_arg (Printf.sprintf "Tuple.set: position %d out of range" i);
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let project t ps = Array.of_list (List.map (get t) ps)
let append = Array.append
let exists = Array.exists
let for_all = Array.for_all
let map = Array.map
let has_null t = Array.exists Value.is_null t

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (to_list t)

module Ordered = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
