type t = { name : string; attrs : Attribute.t array }

let make name attrs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let n = Attribute.name a in
      if Hashtbl.mem seen n then
        invalid_arg
          (Printf.sprintf "Rel_schema.make: duplicate attribute %S in %s" n
             name);
      Hashtbl.add seen n ())
    attrs;
  { name; attrs = Array.of_list attrs }

let of_names name names = make name (List.map Attribute.plain names)

let name s = s.name
let attributes s = Array.to_list s.attrs
let arity s = Array.length s.attrs

let attribute s i =
  if i < 0 || i >= Array.length s.attrs then
    invalid_arg
      (Printf.sprintf "Rel_schema.attribute: position %d out of range for %s"
         i s.name);
  s.attrs.(i)

let position_of s attr_name =
  let rec find i =
    if i >= Array.length s.attrs then None
    else if String.equal (Attribute.name s.attrs.(i)) attr_name then Some i
    else find (i + 1)
  in
  find 0

let positions_where pred s =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if pred s.attrs.(i) then i :: acc else acc)
  in
  collect (Array.length s.attrs - 1) []

let categorical_positions = positions_where Attribute.is_categorical
let plain_positions = positions_where (fun a -> not (Attribute.is_categorical a))

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c
  else
    let c = Int.compare (Array.length a.attrs) (Array.length b.attrs) in
    if c <> 0 then c
    else
      let rec go i =
        if i >= Array.length a.attrs then 0
        else
          let c = Attribute.compare a.attrs.(i) b.attrs.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0

let pp ppf s =
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Attribute.pp)
    (attributes s)
