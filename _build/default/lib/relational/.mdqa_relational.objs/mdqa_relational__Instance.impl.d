lib/relational/instance.ml: Format Hashtbl List Printf Rel_schema Relation String
