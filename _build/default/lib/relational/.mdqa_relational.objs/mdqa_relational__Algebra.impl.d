lib/relational/algebra.ml: Attribute Fun Hashtbl List Option Printf Rel_schema Relation Tuple Value
