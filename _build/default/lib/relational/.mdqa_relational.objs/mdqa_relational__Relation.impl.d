lib/relational/relation.ml: Format Hashtbl List Printf Rel_schema Tuple Value
