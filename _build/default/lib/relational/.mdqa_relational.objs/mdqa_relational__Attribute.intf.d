lib/relational/attribute.mli: Format
