lib/relational/value.ml: Float Format Fun Hashtbl Int Map Scanf Set String
