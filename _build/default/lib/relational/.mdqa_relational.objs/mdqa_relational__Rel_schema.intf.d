lib/relational/rel_schema.mli: Attribute Format
