lib/relational/instance.mli: Format Rel_schema Relation Tuple Value
