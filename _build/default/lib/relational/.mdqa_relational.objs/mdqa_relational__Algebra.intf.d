lib/relational/algebra.mli: Relation Tuple Value
