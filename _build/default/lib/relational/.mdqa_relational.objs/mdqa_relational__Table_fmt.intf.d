lib/relational/table_fmt.mli: Relation
