lib/relational/rel_schema.ml: Array Attribute Format Hashtbl Int List Printf String
