lib/relational/table_fmt.ml: Attribute Buffer List Printf Rel_schema Relation String Tuple Value
