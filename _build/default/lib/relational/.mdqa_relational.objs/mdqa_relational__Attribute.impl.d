lib/relational/attribute.ml: Format String
