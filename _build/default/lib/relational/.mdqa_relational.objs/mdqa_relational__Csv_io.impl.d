lib/relational/csv_io.ml: Attribute Buffer Fun List Printf Rel_schema Relation String Tuple Value
