lib/relational/tuple.ml: Array Format Int List Map Printf Set Value
