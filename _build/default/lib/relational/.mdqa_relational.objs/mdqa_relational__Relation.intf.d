lib/relational/relation.mli: Format Rel_schema Tuple Value
