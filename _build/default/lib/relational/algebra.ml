type predicate = Tuple.t -> bool

let select p r = Relation.filter p r

let select_eq pos v r =
  let out = Relation.create (Relation.schema r) in
  List.iter (fun t -> ignore (Relation.add out t)) (Relation.scan r [ (pos, v) ]);
  out

let project ?name ps r =
  let s = Relation.schema r in
  let rname = Option.value name ~default:(Rel_schema.name s) in
  let attrs = List.map (Rel_schema.attribute s) ps in
  (* Projected attribute names can collide (e.g. projecting the same
     position twice); disambiguate with a positional suffix. *)
  let seen = Hashtbl.create 8 in
  let attrs =
    List.map
      (fun a ->
        let n = Attribute.name a in
        if Hashtbl.mem seen n then begin
          let k = Hashtbl.find seen n + 1 in
          Hashtbl.replace seen n k;
          { a with Attribute.name = Printf.sprintf "%s_%d" n k }
        end
        else begin
          Hashtbl.add seen n 0;
          a
        end)
      attrs
  in
  let out = Relation.create (Rel_schema.make rname attrs) in
  Relation.iter (fun t -> ignore (Relation.add out (Tuple.project t ps))) r;
  out

let rename name r =
  let s = Relation.schema r in
  let out = Relation.create (Rel_schema.make name (Rel_schema.attributes s)) in
  Relation.iter (fun t -> ignore (Relation.add out t)) r;
  out

let check_same_arity op a b =
  if Relation.arity a <> Relation.arity b then
    invalid_arg
      (Printf.sprintf "Algebra.%s: arity mismatch (%s/%d vs %s/%d)" op
         (Relation.name a) (Relation.arity a) (Relation.name b)
         (Relation.arity b))

let union a b =
  check_same_arity "union" a b;
  let out = Relation.create (Relation.schema a) in
  Relation.iter (fun t -> ignore (Relation.add out t)) a;
  Relation.iter (fun t -> ignore (Relation.add out t)) b;
  out

let diff a b =
  check_same_arity "diff" a b;
  Relation.filter (fun t -> not (Relation.mem b t)) a

let intersect a b =
  check_same_arity "intersect" a b;
  Relation.filter (fun t -> Relation.mem b t) a

(* Attribute list for a concatenated result, prefixing right-side names
   that clash with left-side ones. *)
let concat_attrs l r =
  let ls = Relation.schema l and rs = Relation.schema r in
  let left = Rel_schema.attributes ls in
  let left_names = List.map Attribute.name left in
  let right =
    List.map
      (fun a ->
        let n = Attribute.name a in
        if List.mem n left_names then
          { a with Attribute.name = Rel_schema.name rs ^ "_" ^ n }
        else a)
      (Rel_schema.attributes rs)
  in
  left @ right

let product ?name l r =
  let rname =
    Option.value name
      ~default:(Relation.name l ^ "_x_" ^ Relation.name r)
  in
  let out = Relation.create (Rel_schema.make rname (concat_attrs l r)) in
  Relation.iter
    (fun tl ->
      Relation.iter
        (fun tr -> ignore (Relation.add out (Tuple.append tl tr)))
        r)
    l;
  out

let join ?name eqs l r =
  match eqs with
  | [] -> product ?name l r
  | (lp0, rp0) :: rest ->
    let rname =
      Option.value name
        ~default:(Relation.name l ^ "_j_" ^ Relation.name r)
    in
    let out = Relation.create (Rel_schema.make rname (concat_attrs l r)) in
    Relation.iter
      (fun tl ->
        let probe = Relation.scan r [ (rp0, Tuple.get tl lp0) ] in
        List.iter
          (fun tr ->
            let ok =
              List.for_all
                (fun (lp, rp) ->
                  Value.equal (Tuple.get tl lp) (Tuple.get tr rp))
                rest
            in
            if ok then ignore (Relation.add out (Tuple.append tl tr)))
          probe)
      l;
    out

let natural_join ?name l r =
  let ls = Relation.schema l and rs = Relation.schema r in
  let common =
    List.filter_map
      (fun a ->
        let n = Attribute.name a in
        match Rel_schema.position_of rs n with
        | Some rp ->
          (match Rel_schema.position_of ls n with
           | Some lp -> Some (lp, rp)
           | None -> None)
        | None -> None)
      (Rel_schema.attributes ls)
  in
  let joined = join ?name common l r in
  (* Drop the right-side copies of the common attributes. *)
  let drop =
    List.map (fun (_, rp) -> Relation.arity l + rp) common
  in
  let keep =
    List.filter
      (fun p -> not (List.mem p drop))
      (List.init (Relation.arity joined) Fun.id)
  in
  project ~name:(Relation.name joined) keep joined
