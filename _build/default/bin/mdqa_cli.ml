(* mdqa: command-line front end to the Datalog± engine.

   Programs are written in the surface syntax of {!Mdqa_datalog.Parser}
   (facts, TGDs, EGDs, negative constraints, queries).  Subcommands:

     mdqa chase FILE            run the chase, print the saturated instance
     mdqa query FILE [-q Q]     answer queries (chase | proof | rewrite)
     mdqa classify FILE         Datalog± class report and position graph
     mdqa check FILE            constraints only: EGD/NC verdict

   Example program file:

     unit_ward(standard, w1).
     unit_ward(standard, w2).
     patient_ward(w1, sep5, tom).
     patient_unit(U, D, P) :- patient_ward(W, D, P), unit_ward(U, W).
     ?q(U) :- patient_unit(U, sep5, tom). *)

open Cmdliner
module Cterm = Cmdliner.Term
open Mdqa_datalog
module R = Mdqa_relational

let load path =
  try Ok (Parser.parse_file path) with
  | Parser.Error { line; message } ->
    Error (Printf.sprintf "%s:%d: %s" path line message)
  | Sys_error e -> Error e

let setup_logging verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("mdqa: " ^ e);
    exit 1

(* --- common arguments ---------------------------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Datalog± program file.")

let max_steps_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-steps" ] ~docv:"N" ~doc:"Chase step budget.")

let max_nulls_arg =
  Arg.(
    value & opt int 100_000
    & info [ "max-nulls" ] ~docv:"N" ~doc:"Chase labeled-null budget.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Enable debug logging (chase tracing).")

let oblivious_arg =
  Arg.(
    value & flag
    & info [ "oblivious" ]
        ~doc:"Use the oblivious chase instead of the restricted one.")

(* --- chase ----------------------------------------------------------- *)

let run_chase file max_steps max_nulls oblivious verbose =
  setup_logging verbose;
  let { Parser.program; _ } = or_die (load file) in
  let inst = Program.instance_of_facts program in
  let variant = if oblivious then Chase.Oblivious else Chase.Restricted in
  let r = Chase.run ~variant ~max_steps ~max_nulls program inst in
  Format.printf "outcome: %a@." Chase.pp_outcome r.Chase.outcome;
  Format.printf
    "rounds: %d  firings: %d  triggers: %d  nulls: %d  egd merges: %d@.@."
    r.Chase.stats.Chase.rounds r.Chase.stats.Chase.tgd_fires
    r.Chase.stats.Chase.triggers_checked r.Chase.stats.Chase.nulls_created
    r.Chase.stats.Chase.egd_merges;
  List.iter
    (fun rel ->
      if not (R.Relation.is_empty rel) then begin
        R.Table_fmt.print rel;
        print_newline ()
      end)
    (R.Instance.relations r.Chase.instance);
  if r.Chase.outcome = Chase.Saturated then 0 else 1

let chase_cmd =
  Cmd.v
    (Cmd.info "chase" ~doc:"Run the chase and print the saturated instance.")
    Cterm.(
      const run_chase $ file_arg $ max_steps_arg $ max_nulls_arg
      $ oblivious_arg $ verbose_arg)

(* --- query ----------------------------------------------------------- *)

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("chase", `Chase); ("proof", `Proof); ("rewrite", `Rewrite) ])
        `Chase
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:
          "Answering engine: $(b,chase) (materialize then evaluate), \
           $(b,proof) (top-down DeterministicWSQAns), or $(b,rewrite) \
           (FO rewriting, upward-only rule sets).")

let query_arg =
  Arg.(
    value & opt_all string []
    & info [ "query"; "q" ] ~docv:"QUERY"
        ~doc:"Extra query, e.g. 'q(X) :- p(X, Y)'. Repeatable; queries \
              embedded in FILE also run.")

let print_answers name answers =
  Printf.printf "%s:" name;
  if answers = [] then print_string " (no certain answers)";
  print_newline ();
  List.iter (fun t -> Format.printf "  %a@." R.Tuple.pp t) answers

let goal_directed_arg =
  Arg.(
    value & flag
    & info [ "goal-directed" ]
        ~doc:
          "With the chase engine: restrict the rules to those relevant \
           to the query before chasing.")

let run_query file engine query_strings goal_directed =
  let { Parser.program; queries } = or_die (load file) in
  let extra =
    List.map
      (fun s ->
        try Parser.parse_query s
        with Parser.Error { message; _ } ->
          or_die (Error (Printf.sprintf "query %S: %s" s message)))
      query_strings
  in
  let queries = queries @ extra in
  if queries = [] then or_die (Error "no queries (use -q or add ?q(..) :- ..)");
  let inst = Program.instance_of_facts program in
  let failed = ref false in
  List.iter
    (fun q ->
      match engine with
      | `Chase -> (
        match Query.certain_answers ~goal_directed program inst q with
        | Query.Ok answers -> print_answers q.Query.name answers
        | Query.Inconsistent f ->
          Format.printf "%s: inconsistent — %a@." q.Query.name
            Chase.pp_outcome (Chase.Failed f);
          failed := true
        | Query.Budget _ ->
          Printf.printf "%s: chase budget exhausted\n" q.Query.name;
          failed := true)
      | `Proof ->
        let r = Proof.answer program inst q in
        print_answers q.Query.name r.Proof.answers;
        if not r.Proof.complete then begin
          Printf.printf "  (search truncated after %d steps)\n" r.Proof.steps;
          failed := true
        end
      | `Rewrite -> (
        match Rewrite.answers program inst q with
        | Ok answers -> print_answers q.Query.name answers
        | Error e ->
          Printf.printf "%s: %s\n" q.Query.name e;
          failed := true))
    queries;
  if !failed then 1 else 0

let query_cmd =
  Cmd.v (Cmd.info "query" ~doc:"Answer conjunctive queries over a program.")
    Cterm.(
      const run_query $ file_arg $ engine_arg $ query_arg
      $ goal_directed_arg)

(* --- classify -------------------------------------------------------- *)

let run_classify file =
  let { Parser.program; _ } = or_die (load file) in
  Format.printf "%a@.@." Classes.pp_report (Classes.classify program);
  let g = Position_graph.build program in
  let finite = Position_graph.finite_rank_positions g in
  let infinite = Position_graph.infinite_rank_positions g in
  Format.printf "positions: %d finite rank, %d infinite rank@."
    (List.length finite) (List.length infinite);
  if infinite <> [] then
    Format.printf "infinite-rank: %s@."
      (String.concat ", "
         (List.map (fun (p, i) -> Printf.sprintf "%s[%d]" p i) infinite));
  let affected = Position_graph.affected_positions g in
  Format.printf "affected positions: %s@."
    (if affected = [] then "(none)"
     else
       String.concat ", "
         (List.map (fun (p, i) -> Printf.sprintf "%s[%d]" p i) affected));
  Format.printf "EGD separability (non-affected heads): %a@."
    Separability.pp_verdict (Separability.non_affected_heads program);
  Format.printf "rewritable by unfolding (acyclic predicates): %b@."
    (Rewrite.rewritable program);
  0

let classify_cmd =
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Report Datalog± class membership and position-graph facts.")
    Cterm.(const run_classify $ file_arg)

(* --- check ----------------------------------------------------------- *)

let run_check file max_steps max_nulls =
  let { Parser.program; _ } = or_die (load file) in
  let inst = Program.instance_of_facts program in
  let r = Chase.run ~max_steps ~max_nulls program inst in
  (match r.Chase.outcome with
   | Chase.Saturated ->
     print_endline "consistent: all EGDs and constraints satisfied"
   | o -> Format.printf "%a@." Chase.pp_outcome o);
  if r.Chase.outcome = Chase.Saturated then 0 else 1

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Check EGDs and negative constraints (via chase).")
    Cterm.(const run_check $ file_arg $ max_steps_arg $ max_nulls_arg)

(* --- context: the full MD quality pipeline over .mdq files ----------- *)

let repair_arg =
  Arg.(
    value & flag
    & info [ "repair" ]
        ~doc:
          "If the data violates the denial constraints, discard a minimal \
           set of offending tuples (subset repair) before assessing, as in \
           the paper's Example 1.")

let load_csv_arg =
  Arg.(
    value & opt_all (pair ~sep:'=' string file) []
    & info [ "load" ] ~docv:"REL=FILE.csv"
        ~doc:
          "Replace (or create) a source relation from a CSV file before \
           assessing.  Repeatable.")

let explain_arg =
  Arg.(
    value & opt int 0
    & info [ "explain" ] ~docv:"N"
        ~doc:
          "Print the derivation tree of up to $(docv) tuples of each \
           quality version (why they were deemed up to quality).")

let run_context file do_repair loads explain_n =
  let module Context = Mdqa_context.Context in
  let module Repair = Mdqa_context.Repair in
  let module Md_ontology = Mdqa_multidim.Md_ontology in
  let parsed =
    try Mdqa_context.Md_parser.parse_file file with
    | Mdqa_context.Md_parser.Error { line; message } ->
      or_die (Error (Printf.sprintf "%s:%d: %s" file line message))
    | Sys_error e -> or_die (Error e)
  in
  let { Mdqa_context.Md_parser.ontology; context; source; queries } = parsed in
  (* CSV overrides for source relations *)
  List.iter
    (fun (rel, path) ->
      match
        (try Ok (R.Csv_io.load_relation ~name:rel path)
         with Failure e | Sys_error e -> Error e)
      with
      | Error e -> or_die (Error (path ^ ": " ^ e))
      | Ok loaded -> (
        match R.Instance.find source rel with
        | Some existing ->
          if R.Relation.arity existing <> R.Relation.arity loaded then
            or_die
              (Error
                 (Printf.sprintf "%s: arity %d does not match declared %d"
                    path (R.Relation.arity loaded) (R.Relation.arity existing)));
          (* replace contents *)
          R.Relation.iter (fun t -> ignore (R.Relation.remove existing t))
            (R.Relation.copy existing);
          R.Relation.iter (fun t -> ignore (R.Relation.add existing t)) loaded
        | None ->
          or_die
            (Error
               (Printf.sprintf
                  "--load %s: no 'source %s(...)' declaration in %s" rel rel
                  file))))
    loads;
  (* Static reports. *)
  (match Md_ontology.referential_violations ontology with
   | [] -> print_endline "referential constraints (1): satisfied"
   | viols ->
     List.iter
       (fun v -> Format.printf "referential violation: %a@." Md_ontology.pp_violation v)
       viols);
  Format.printf "Datalog± classes:@.%a@." Classes.pp_report
    (Md_ontology.classes ontology);
  Format.printf "EGD separability: %a@." Separability.pp_verdict
    (Md_ontology.separability ontology);
  Printf.printf "upward-only: %b\n\n" (Md_ontology.is_upward_only ontology);
  (* Assessment. *)
  let finish (a : Context.assessment) =
    let explain_quality (a : Context.assessment) =
      if explain_n > 0 then
        List.iter
          (fun (orig, _) ->
            match Context.quality_version a orig with
            | Some q ->
              let shown = ref 0 in
              R.Relation.iter
                (fun t ->
                  if !shown < explain_n then begin
                    incr shown;
                    match Context.explain a orig t with
                    | Ok tree ->
                      Printf.printf "why is this %s tuple up to quality?\n"
                        orig;
                      Format.printf "%a@." Explain.pp tree
                    | Error e -> print_endline e
                  end)
                q
            | None -> ())
          context.Context.quality_versions
    in
    Format.printf "chase: %a@.@." Chase.pp_outcome a.Context.chase.Chase.outcome;
    if a.Context.chase.Chase.outcome = Chase.Saturated then begin
      List.iter
        (fun (orig, _) ->
          match Context.quality_version a orig with
          | Some q ->
            R.Table_fmt.print ~title:(orig ^ " quality version") q;
            print_newline ()
          | None -> Printf.printf "no quality version for %s\n" orig)
        context.Context.quality_versions;
      explain_quality a;
      Format.printf "%a@.@." Mdqa_context.Assessment.pp_report
        (Mdqa_context.Assessment.report a);
      List.iter
        (fun q ->
          match Context.clean_answers a q with
          | Some answers -> print_answers (q.Query.name ^ " (quality)") answers
          | None -> Printf.printf "%s: no answers (inconsistent)\n" q.Query.name)
        queries;
      0
    end
    else 1
  in
  if do_repair then
    match Repair.assess_repaired context ~source with
    | Ok (a, removed) ->
      if removed <> [] then begin
        print_endline "discarded by repair:";
        List.iter
          (fun d -> Format.printf "  %a@." Repair.pp_deletion d)
          removed;
        print_newline ()
      end;
      finish a
    | Error e -> or_die (Error e)
  else finish (Context.assess ~provenance:(explain_n > 0) context ~source)

let context_cmd =
  Cmd.v
    (Cmd.info "context"
       ~doc:
         "Run a full multidimensional quality-assessment pipeline from an \
          .mdq context file: classes, constraints, chase, quality versions, \
          quality query answers.")
    Cterm.(
      const run_context $ file_arg $ repair_arg $ load_csv_arg $ explain_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "mdqa" ~version:"1.0.0"
       ~doc:
         "Multidimensional ontological contexts for data quality \
          assessment — Datalog± engine CLI.")
    [ chase_cmd; query_cmd; classify_cmd; check_cmd; context_cmd ]

let () = exit (Cmd.eval' main_cmd)
