(* Tests for the telecom fixture: the DAG Calendar dimension,
   two-dimension navigation rules, and the CDR quality pipeline. *)

open Mdqa_multidim
open Mdqa_datalog
open Mdqa_context
module R = Mdqa_relational
module Telecom = Mdqa_telecom.Telecom

let sym = R.Value.sym
let tuple_testable = Alcotest.testable R.Tuple.pp R.Tuple.equal

(* --- the DAG dimension --------------------------------------------- *)

let test_calendar_dag_shape () =
  let d = Telecom.calendar_dim in
  Alcotest.(check (list string)) "Day has two parents" [ "Month"; "Week" ]
    (Dim_schema.parents d "Day");
  Alcotest.(check int) "two paths Day -> Year" 2
    (List.length (Dim_schema.paths d ~source:"Day" ~target:"Year"));
  Alcotest.(check int) "Year level" 2 (Dim_schema.level d "Year")

let test_calendar_instance_strict_homogeneous () =
  Alcotest.(check bool) "strict across both paths" true
    (Dim_instance.is_strict Telecom.calendar_instance);
  Alcotest.(check bool) "every day has a week and a month" true
    (Dim_instance.is_homogeneous Telecom.calendar_instance)

let test_calendar_rollups () =
  let up cat m =
    List.map R.Value.to_string
      (Dim_instance.rollup Telecom.calendar_instance (sym m) ~to_category:cat)
  in
  Alcotest.(check (list string)) "d10 week" [ "w2" ] (up "Week" "d10");
  Alcotest.(check (list string)) "d10 month" [ "m1" ] (up "Month" "d10");
  Alcotest.(check (list string)) "d17 month" [ "m2" ] (up "Month" "d17");
  Alcotest.(check (list string)) "both paths converge at y1" [ "y1" ]
    (up "Year" "d10")

(* --- rule analysis: two dimensions at once -------------------------- *)

let test_two_dimension_rules () =
  (match Dim_rule.analyze Telecom.md_schema Telecom.rule_cell_checked with
   | Ok info ->
     Alcotest.(check bool) "downward" true
       (info.Dim_rule.navigation = Dim_rule.Downward);
     Alcotest.(check (list string)) "both dimensions"
       [ "Calendar"; "Network" ] info.Dim_rule.dimensions
   | Error e -> Alcotest.fail e);
  (match Dim_rule.analyze Telecom.md_schema Telecom.rule_region_activity with
   | Ok info ->
     Alcotest.(check bool) "upward" true
       (info.Dim_rule.navigation = Dim_rule.Upward);
     Alcotest.(check (list string)) "both dimensions"
       [ "Calendar"; "Network" ] info.Dim_rule.dimensions
   | Error e -> Alcotest.fail e)

let test_ontology_classes_and_separability () =
  let m = Telecom.ontology () in
  let report = Md_ontology.classes m in
  Alcotest.(check bool) "weakly sticky" true report.Classes.weakly_sticky;
  Alcotest.(check bool) "weakly acyclic (full rules)" true
    report.Classes.weakly_acyclic;
  (* the crew EGD equates a plain attribute: the categorical-positions
     criterion refuses, the non-affected criterion accepts *)
  Alcotest.(check bool) "categorical-positions criterion fails" false
    (Md_ontology.separability m).Separability.separable;
  Alcotest.(check bool) "non-affected criterion passes" true
    (Separability.non_affected_heads (Md_ontology.program m))
      .Separability.separable

(* --- the quality pipeline ------------------------------------------- *)

let assessment = lazy (Context.assess (Telecom.context ()) ~source:(Telecom.source ()))

let test_quality_version () =
  let a = Lazy.force assessment in
  Alcotest.(check bool) "saturated" true
    (a.Context.chase.Chase.outcome = Chase.Saturated);
  match Context.quality_version a "cdr" with
  | None -> Alcotest.fail "no quality version"
  | Some q ->
    Alcotest.(check int) "three quality CDRs" 3 (R.Relation.cardinal q);
    let days =
      List.map (fun t -> R.Value.to_string (R.Tuple.get t 0)) (R.Relation.to_list q)
      |> List.sort_uniq compare
    in
    Alcotest.(check (list string)) "expected days" Telecom.expected_quality_days
      days

let test_caller_query () =
  let a = Lazy.force assessment in
  match Context.clean_answers a Telecom.caller_query with
  | None -> Alcotest.fail "inconsistent"
  | Some answers ->
    (* alice's week-2 calls: (d10, c3) qualifies, (d10, c5) does not *)
    Alcotest.(check (list tuple_testable)) "only the checked cell"
      [ R.Tuple.of_list [ sym "d10"; sym "c3" ] ]
      answers

let test_assessment_ratio () =
  let a = Lazy.force assessment in
  match Assessment.report a with
  | [ r ] ->
    Alcotest.(check int) "original" 6 r.Assessment.original_size;
    Alcotest.(check int) "kept" 3 r.Assessment.kept;
    Alcotest.(check bool) "ratio 0.5" true
      (abs_float (r.Assessment.ratio -. 0.5) < 1e-9)
  | l -> Alcotest.failf "expected one report, got %d" (List.length l)

let test_region_activity_derived () =
  let a = Lazy.force assessment in
  let ra = R.Instance.get a.Context.chase.Chase.instance "region_activity" in
  (* calls in north cells in m1 and m2; south cells only m1 *)
  Alcotest.(check bool) "north m1" true
    (R.Relation.mem ra (R.Tuple.of_list [ sym "north"; sym "m1" ]));
  Alcotest.(check bool) "north m2" true
    (R.Relation.mem ra (R.Tuple.of_list [ sym "north"; sym "m2" ]));
  Alcotest.(check bool) "south m1" true
    (R.Relation.mem ra (R.Tuple.of_list [ sym "south"; sym "m1" ]));
  Alcotest.(check bool) "no south m2" false
    (R.Relation.mem ra (R.Tuple.of_list [ sym "south"; sym "m2" ]))

let test_decommissioned_constraint () =
  let a =
    Context.assess (Telecom.context ~bad_region:true ())
      ~source:(Telecom.source ~bad_region:true ())
  in
  match a.Context.chase.Chase.outcome with
  | Chase.Failed (Chase.Nc_violation { nc; _ }) ->
    Alcotest.(check string) "the decommissioning constraint"
      "nc_south_decommissioned" nc.Nc.name
  | o -> Alcotest.failf "expected violation, got %a" Chase.pp_outcome o

(* --- aggregation along the two DAG paths ----------------------------- *)

let test_aggregate_week_vs_month_paths () =
  let a = Lazy.force assessment in
  let q =
    match Context.quality_version a "cdr" with
    | Some q -> q
    | None -> Alcotest.fail "no quality version"
  in
  let totals to_category =
    match
      Aggregate.rollup Telecom.calendar_instance ~relation:q ~group_position:0
        ~to_category ~value_position:3 ~op:Aggregate.Sum ()
    with
    | Ok rows ->
      List.map (fun r -> (R.Value.to_string r.Aggregate.group, r.Aggregate.value)) rows
    | Error e -> Alcotest.fail e
  in
  (* quality CDRs: d03 (120, w1/m1), d10 (45, w2/m1), d17 (60, w3/m2) *)
  Alcotest.(check (list (pair string (float 1e-6)))) "weekly"
    [ ("w1", 120.); ("w2", 45.); ("w3", 60.) ]
    (totals "Week");
  Alcotest.(check (list (pair string (float 1e-6)))) "monthly"
    [ ("m1", 165.); ("m2", 60.) ]
    (totals "Month");
  (* both paths conserve the grand total *)
  let sum l = List.fold_left (fun acc (_, x) -> acc +. x) 0. l in
  Alcotest.(check (float 1e-6)) "paths agree on the total"
    (sum (totals "Week")) (sum (totals "Month"))

let test_proof_engine_on_dag () =
  (* cell_checked via the two-dimension downward rule, answered
     top-down *)
  let m = Telecom.ontology () in
  let q =
    Query.make ~name:"c1_days" ~head:[ Term.var "D" ]
      [ Atom.make "cell_checked" [ Term.Const (sym "c1"); Term.var "D" ] ]
  in
  let r = Md_ontology.proof_answers m q in
  Alcotest.(check bool) "complete" true r.Proof.complete;
  (* c1 is on t1, checked in w1 (d01..d07) and w3 (d15..d21) *)
  Alcotest.(check int) "14 days" 14 (List.length r.Proof.answers);
  (* chase agrees *)
  (match Md_ontology.certain_answers m q with
   | Query.Ok answers ->
     Alcotest.(check bool) "chase agrees" true (answers = r.Proof.answers)
   | _ -> Alcotest.fail "chase failed")

let case name f = Alcotest.test_case name `Quick f

let suites =
  [ ( "telecom.calendar",
      [ case "DAG shape" test_calendar_dag_shape;
        case "strict + homogeneous on both paths"
          test_calendar_instance_strict_homogeneous;
        case "roll-ups along both paths" test_calendar_rollups ] );
    ( "telecom.rules",
      [ case "two-dimension navigation analysis" test_two_dimension_rules;
        case "classes and separability" test_ontology_classes_and_separability
      ] );
    ( "telecom.pipeline",
      [ case "quality version (3 of 6 CDRs)" test_quality_version;
        case "caller query through the context" test_caller_query;
        case "assessment ratio" test_assessment_ratio;
        case "region activity derived upward" test_region_activity_derived;
        case "decommissioned-region constraint" test_decommissioned_constraint
      ] );
    ( "telecom.aggregation",
      [ case "week vs month DAG paths" test_aggregate_week_vs_month_paths;
        case "proof engine on the DAG rules" test_proof_engine_on_dag ] ) ]
