test/test_tutorial.ml: Alcotest Atom Dim_instance Dim_rule Dim_schema Explain List Md_ontology Md_schema Mdqa_context Mdqa_datalog Mdqa_multidim Mdqa_relational Query Term Tgd
