test/test_relational.ml: Alcotest Algebra Csv_io Filename Format Fun Instance List Mdqa_relational Printf QCheck QCheck_alcotest Rel_schema Relation String Sys Table_fmt Tuple Value
