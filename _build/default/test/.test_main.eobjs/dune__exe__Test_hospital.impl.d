test/test_hospital.ml: Alcotest Assessment Atom Chase Context Lazy List Mdqa_context Mdqa_datalog Mdqa_hospital Mdqa_multidim Mdqa_relational Proof Query Term
