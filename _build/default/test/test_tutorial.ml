(* The depot scenario from doc/TUTORIAL.md, compiled and asserted —
   keeps the tutorial's API usage honest. *)

open Mdqa_multidim
open Mdqa_datalog
module R = Mdqa_relational
module Context = Mdqa_context.Context

let v = Term.var

let site_dim = Dim_schema.linear ~name:"Site" [ "Scanner"; "Depot"; "Hub" ]
let week_dim = Dim_schema.linear ~name:"Cal" [ "Day"; "Week" ]

let site_inst =
  Dim_instance.make site_dim
    ~members:
      [ ("Scanner", [ "sc1"; "sc2"; "sc3" ]); ("Depot", [ "d1"; "d2" ]);
        ("Hub", [ "h1" ]) ]
    ~links:
      [ ("sc1", "d1"); ("sc2", "d1"); ("sc3", "d2"); ("d1", "h1");
        ("d2", "h1") ]

let cal_inst =
  Dim_instance.make week_dim
    ~members:
      [ ("Day", [ "day1"; "day2"; "day8" ]); ("Week", [ "wk1"; "wk2" ]) ]
    ~links:[ ("day1", "wk1"); ("day2", "wk1"); ("day8", "wk2") ]

let audit_schema =
  R.Rel_schema.make "depot_audit"
    [ R.Attribute.categorical "depot" ~dimension:"Site" ~category:"Depot";
      R.Attribute.categorical "week" ~dimension:"Cal" ~category:"Week";
      R.Attribute.plain "result" ]

let scanner_ok_schema =
  R.Rel_schema.make "scanner_ok"
    [ R.Attribute.categorical "scanner" ~dimension:"Site" ~category:"Scanner";
      R.Attribute.categorical "day" ~dimension:"Cal" ~category:"Day" ]

let md_schema =
  Md_schema.make ~dimensions:[ site_dim; week_dim ]
    ~relations:[ audit_schema; scanner_ok_schema ]

let rule_ok =
  Tgd.make ~name:"scanner_ok_down"
    ~body:
      [ Atom.make "depot_audit" [ v "DP"; v "WK"; Term.sym "pass" ];
        Atom.make "depot_scanner" [ v "DP"; v "SC" ];
        Atom.make "week_day" [ v "WK"; v "D" ] ]
    ~head:[ Atom.make "scanner_ok" [ v "SC"; v "D" ] ]
    ()

let ontology () =
  let data = R.Instance.create () in
  let audits = R.Instance.declare data audit_schema in
  ignore
    (R.Relation.add audits
       (R.Tuple.of_list
          [ R.Value.sym "d1"; R.Value.sym "wk1"; R.Value.sym "pass" ]));
  Md_ontology.make ~schema:md_schema ~dim_instances:[ site_inst; cal_inst ]
    ~data ~rules:[ rule_ok ] ()

let source () =
  let inst = R.Instance.create () in
  let scans =
    R.Instance.declare inst
      (R.Rel_schema.of_names "scans" [ "day"; "package"; "scanner" ])
  in
  List.iter
    (fun (d, p, sc) ->
      ignore
        (R.Relation.add scans
           (R.Tuple.of_list [ R.Value.sym d; R.Value.sym p; R.Value.sym sc ])))
    [ ("day1", "pkg7", "sc1"); ("day2", "pkg8", "sc3"); ("day8", "pkg9", "sc1") ];
  inst

let context () =
  Context.make ~ontology:(ontology ())
    ~mappings:[ { Context.source = "scans"; target = "scans_c" } ]
    ~rules:
      [ Tgd.make ~name:"scans_q"
          ~body:
            [ Atom.make "scans_c" [ v "D"; v "P"; v "SC" ];
              Atom.make "scanner_ok" [ v "SC"; v "D" ] ]
          ~head:[ Atom.make "scans_q" [ v "D"; v "P"; v "SC" ] ]
          () ]
    ~quality_versions:[ ("scans", "scans_q") ]
    ()

let test_tutorial_pipeline () =
  let assessment = Context.assess ~provenance:true (context ()) ~source:(source ()) in
  (* S^q: only pkg7's scan qualifies, as the tutorial states *)
  (match Context.quality_version assessment "scans" with
   | Some q ->
     Alcotest.(check int) "one quality scan" 1 (R.Relation.cardinal q);
     Alcotest.(check bool) "it is pkg7's" true
       (R.Relation.mem q
          (R.Tuple.of_list
             [ R.Value.sym "day1"; R.Value.sym "pkg7"; R.Value.sym "sc1" ]))
   | None -> Alcotest.fail "no quality version");
  (* clean answers over the original schema *)
  let q =
    Query.make ~head:[ v "P" ] [ Atom.make "scans" [ v "D"; v "P"; v "SC" ] ]
  in
  (match Context.clean_answers assessment q with
   | Some [ t ] ->
     Alcotest.(check bool) "pkg7" true
       (R.Tuple.equal t (R.Tuple.of_list [ R.Value.sym "pkg7" ]))
   | _ -> Alcotest.fail "expected exactly pkg7");
  (* the explanation bottoms out in the audit and the scan *)
  (match
     Context.explain assessment "scans"
       (R.Tuple.of_list
          [ R.Value.sym "day1"; R.Value.sym "pkg7"; R.Value.sym "sc1" ])
   with
   | Ok tree ->
     Alcotest.(check bool) "rests on the audit" true
       (List.exists
          (fun (p, _) -> p = "depot_audit")
          (Explain.extensional_support tree))
   | Error e -> Alcotest.fail e);
  (* incremental extension with a new scan *)
  let a' =
    Context.assess_incremental assessment
      ~added:
        [ ("scans",
           R.Tuple.of_list
             [ R.Value.sym "day2"; R.Value.sym "pkg10"; R.Value.sym "sc1" ]) ]
  in
  match Context.quality_version a' "scans" with
  | Some q -> Alcotest.(check int) "pkg10 joins (sc1/day2 covered)" 2 (R.Relation.cardinal q)
  | None -> Alcotest.fail "no quality version after increment"

let test_tutorial_rule_analysis () =
  match Dim_rule.analyze md_schema rule_ok with
  | Ok info ->
    Alcotest.(check bool) "form 4" true (info.Dim_rule.form = Dim_rule.Form4);
    Alcotest.(check bool) "downward" true
      (info.Dim_rule.navigation = Dim_rule.Downward);
    Alcotest.(check (list string)) "both dimensions" [ "Cal"; "Site" ]
      info.Dim_rule.dimensions
  | Error e -> Alcotest.fail e

let suites =
  [ ( "tutorial.depot",
      [ Alcotest.test_case "pipeline as documented" `Quick
          test_tutorial_pipeline;
        Alcotest.test_case "rule analysis as documented" `Quick
          test_tutorial_rule_analysis ] ) ]
