examples/hospital_navigation.ml: Atom Chase Format List Mdqa_datalog Mdqa_hospital Mdqa_multidim Mdqa_relational Printf Proof Query Term Tgd
