examples/telecom_quality.mli:
