examples/sensor_quality.mli:
