examples/quickstart.mli:
