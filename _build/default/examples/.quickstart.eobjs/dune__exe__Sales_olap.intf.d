examples/sales_olap.mli:
