examples/quickstart.ml: Chase Explain Format List Mdqa_context Mdqa_datalog Mdqa_hospital Mdqa_multidim Mdqa_relational Printf Query Tgd
