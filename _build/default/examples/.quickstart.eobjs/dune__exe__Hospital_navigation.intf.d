examples/hospital_navigation.mli:
