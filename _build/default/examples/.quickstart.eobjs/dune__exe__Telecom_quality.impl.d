examples/telecom_quality.ml: Aggregate Chase Classes Dim_instance Dim_rule Dim_schema Format List Md_ontology Mdqa_context Mdqa_datalog Mdqa_multidim Mdqa_relational Mdqa_telecom Printf Query String
