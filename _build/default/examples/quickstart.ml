(* Quickstart: the paper's hospital example end to end.

   A doctor asks for "the body temperatures of Tom Waits on September 5
   taken around noon with a thermometer of brand B1".  The raw
   [measurements] table cannot answer this — it records neither nurses
   nor thermometers.  Mapping the table into a multidimensional quality
   context (dimensional navigation from wards up to care units plus the
   institutional guideline on thermometer brands) computes the quality
   version [measurements_q] (the paper's Table II) and the quality
   answer to the query.

   Run with: dune exec examples/quickstart.exe *)

module Hospital = Mdqa_hospital.Hospital
module Context = Mdqa_context.Context
module Assessment = Mdqa_context.Assessment
module Table = Mdqa_relational.Table_fmt
open Mdqa_datalog

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let () =
  section "Table I: the measurements under assessment";
  Table.print ~title:"measurements (Table I)" Hospital.measurements;

  section "The multidimensional context";
  Format.printf "%a@." Mdqa_multidim.Md_schema.pp Hospital.md_schema;
  Printf.printf
    "\ndimensional rules:\n  %s\n  %s\nplus the thermometer EGD and the \
     closed-unit constraints.\n"
    (Format.asprintf "%a" Tgd.pp Hospital.rule7)
    (Format.asprintf "%a" Tgd.pp Hospital.rule8);

  section "Assessment: chase the context";
  let ctx = Hospital.context () in
  let assessment = Context.assess ctx ~source:(Hospital.source ()) in
  let chase = assessment.Context.chase in
  Format.printf "chase outcome: %a@." Chase.pp_outcome chase.Chase.outcome;
  Printf.printf
    "rounds: %d, rule firings: %d, nulls invented: %d\n"
    chase.Chase.stats.Chase.rounds chase.Chase.stats.Chase.tgd_fires
    chase.Chase.stats.Chase.nulls_created;

  section "Table II: the computed quality version";
  (match Context.quality_version assessment "measurements" with
   | Some q -> Table.print ~title:"measurements_q (computed Table II)" q
   | None -> print_endline "no quality version!");

  section "The doctor's query, with and without the context";
  Format.printf "query: %a@.@." Query.pp Hospital.doctor_query;
  let raw = Query.certain (Hospital.source ()) Hospital.doctor_query in
  Printf.printf "over the raw table (unvetted): %d row(s)\n" (List.length raw);
  (match Context.clean_answers assessment Hospital.doctor_query with
   | Some answers ->
     Printf.printf "quality answers (through measurements_q):\n";
     List.iter
       (fun t -> Format.printf "  %a@." Mdqa_relational.Tuple.pp t)
       answers
   | None -> print_endline "context inconsistent");

  section "Quality report";
  Format.printf "%a@." Assessment.pp_report (Assessment.report assessment);

  section "Why is row 1 up to quality?";
  let with_prov =
    Context.assess ~provenance:true ctx ~source:(Hospital.source ())
  in
  let row1 =
    Mdqa_relational.Tuple.of_list
      [ Mdqa_relational.Value.sym "Sep/5-12:10";
        Mdqa_relational.Value.sym "Tom Waits";
        Mdqa_relational.Value.real 38.2 ]
  in
  (match Context.explain with_prov "measurements" row1 with
   | Ok tree -> Format.printf "%a@." Explain.pp tree
   | Error e -> print_endline e)
