(* Call-detail-record quality in a mobile network.

   Highlights what the hospital example does not: a non-linear (DAG)
   Calendar dimension (days roll up both through weeks and through
   months), dimensional rules navigating two dimensions in one step,
   and aggregation along the two alternative roll-up paths.

   Run with: dune exec examples/telecom_quality.exe *)

open Mdqa_multidim
open Mdqa_datalog
module Telecom = Mdqa_telecom.Telecom
module Context = Mdqa_context.Context
module Assessment = Mdqa_context.Assessment
module R = Mdqa_relational

let section title = Printf.printf "\n=== %s ===\n\n" title

let () =
  section "The Calendar DAG";
  Format.printf "%a@.@." Dim_schema.pp Telecom.calendar_dim;
  Printf.printf "paths from Day to Year: %s\n"
    (String.concat "  |  "
       (List.map (String.concat " -> ")
          (Dim_schema.paths Telecom.calendar_dim ~source:"Day" ~target:"Year")));
  Printf.printf "strict: %b, homogeneous: %b\n"
    (Dim_instance.is_strict Telecom.calendar_instance)
    (Dim_instance.is_homogeneous Telecom.calendar_instance);

  section "CDRs under assessment and the inspection log";
  R.Table_fmt.print ~title:"cdr" (R.Instance.get (Telecom.source ()) "cdr");
  print_newline ();
  R.Table_fmt.print ~title:"tower_checked (weekly, at Tower level)"
    Telecom.tower_checked;

  section "Dimensional rules navigating two dimensions at once";
  let m = Telecom.ontology () in
  List.iter
    (fun info -> Format.printf "%a@." Dim_rule.pp_info info)
    m.Md_ontology.rule_infos;
  Format.printf "@.classes:@.%a@." Classes.pp_report (Md_ontology.classes m);

  section "Quality assessment";
  let assessment = Context.assess (Telecom.context ()) ~source:(Telecom.source ()) in
  (match Context.quality_version assessment "cdr" with
   | Some q ->
     R.Table_fmt.print ~title:"cdr_q (tower inspected in the call's week)" q;
     Format.printf "@.%a@." Assessment.pp_report (Assessment.report assessment);
     section "Aggregation along the two DAG paths";
     let show to_category =
       match
         Aggregate.rollup Telecom.calendar_instance ~relation:q
           ~group_position:0 ~to_category ~value_position:3
           ~op:Aggregate.Sum ()
       with
       | Ok rows ->
         Printf.printf "quality minutes by %s:\n" to_category;
         List.iter (fun r -> Format.printf "  %a@." Aggregate.pp_row r) rows
       | Error e -> print_endline e
     in
     show "Week";
     show "Month"
   | None -> print_endline "no quality version");

  section "Quality query: Alice's calls in week 2";
  Format.printf "%a@." Query.pp Telecom.caller_query;
  (match Context.clean_answers assessment Telecom.caller_query with
   | Some answers ->
     List.iter (fun t -> Format.printf "  %a@." R.Tuple.pp t) answers
   | None -> print_endline "inconsistent");

  section "The decommissioned south region";
  let bad =
    Context.assess (Telecom.context ~bad_region:true ())
      ~source:(Telecom.source ~bad_region:true ())
  in
  Format.printf "assessing with a south-region call in month m2: %a@."
    Chase.pp_outcome bad.Context.chase.Chase.outcome
