(* OLAP-style example: sales cube quality with summarizability checks.

   A retailer aggregates [sales] by product category and by city.  Data
   quality has three dimensional facets here:

   - {e summarizability} (Hurtado–Mendelzon): an item classified under
     two categories double-counts in category totals — diagnosed before
     aggregation;
   - an {e EGD} dimensional constraint: all stores of a city apply one
     tax rate — and the two separability criteria are compared on it;
   - an {e inter-dimensional negative constraint}: recalled items must
     not be sold in Berlin stores (Product × Geography, like the
     paper's Hospital × Time constraint);
   - a {e quality context}: only sales from audited cities count, where
     audits are recorded at the City level and propagate down to
     stores by dimensional navigation.

   Run with: dune exec examples/sales_olap.exe *)

open Mdqa_multidim
open Mdqa_datalog
module Context = Mdqa_context.Context
module Assessment = Mdqa_context.Assessment
module R = Mdqa_relational

let v = Term.var
let c s = Term.Const (R.Value.sym s)
let sym = R.Value.sym
let tuple_syms l = R.Tuple.of_list (List.map sym l)
let section title = Printf.printf "\n=== %s ===\n\n" title

(* --- dimensions ------------------------------------------------------ *)

let product_dim = Dim_schema.linear ~name:"Product" [ "Item"; "Category"; "Department" ]
let geo_dim = Dim_schema.linear ~name:"Geography" [ "Store"; "City"; "Country" ]

let items = [ "lamp"; "couch"; "laptop"; "phone"; "heater"; "kettle" ]

(* [heater] is deliberately classified under two categories. *)
let product_links_bad =
  [ ("lamp", "home"); ("couch", "home"); ("kettle", "home");
    ("laptop", "electronics"); ("phone", "electronics");
    ("heater", "home"); ("heater", "electronics");
    ("home", "retail"); ("electronics", "retail") ]

let product_links_fixed =
  List.filter (fun l -> l <> ("heater", "electronics")) product_links_bad

let product_instance links =
  Dim_instance.make product_dim
    ~members:
      [ ("Item", items); ("Category", [ "home"; "electronics" ]);
        ("Department", [ "retail" ]) ]
    ~links

let geo_instance =
  Dim_instance.make geo_dim
    ~members:
      [ ("Store", [ "s1"; "s2"; "s3"; "s4" ]);
        ("City", [ "berlin"; "paris" ]); ("Country", [ "de"; "fr" ]) ]
    ~links:
      [ ("s1", "berlin"); ("s2", "berlin"); ("s3", "paris"); ("s4", "paris");
        ("berlin", "de"); ("paris", "fr") ]

(* --- categorical relations ------------------------------------------- *)

let cat = R.Attribute.categorical
let plain = R.Attribute.plain

let sales_cat_schema =
  R.Rel_schema.make "sales_fact"
    [ cat "item" ~dimension:"Product" ~category:"Item";
      cat "store" ~dimension:"Geography" ~category:"Store";
      plain "amount" ]

let audit_log_schema =
  R.Rel_schema.make "audit_log"
    [ cat "city" ~dimension:"Geography" ~category:"City"; plain "auditor" ]

let store_audited_schema =
  R.Rel_schema.make "store_audited"
    [ cat "store" ~dimension:"Geography" ~category:"Store" ]

let store_tax_schema =
  R.Rel_schema.make "store_tax"
    [ cat "store" ~dimension:"Geography" ~category:"Store"; plain "rate" ]

let recalled_schema =
  R.Rel_schema.make "recalled"
    [ cat "item" ~dimension:"Product" ~category:"Item" ]

let md_schema =
  Md_schema.make ~dimensions:[ product_dim; geo_dim ]
    ~relations:
      [ sales_cat_schema; audit_log_schema; store_audited_schema;
        store_tax_schema; recalled_schema ]

let audit_log =
  R.Relation.of_tuples audit_log_schema
    (List.map tuple_syms [ [ "berlin"; "alice" ] ])

let store_tax =
  R.Relation.of_tuples store_tax_schema
    [ R.Tuple.of_list [ sym "s1"; R.Value.real 0.19 ];
      R.Tuple.of_list [ sym "s2"; R.Value.real 0.19 ];
      R.Tuple.of_list [ sym "s3"; R.Value.real 0.20 ] ]

let recalled =
  R.Relation.of_tuples recalled_schema (List.map tuple_syms [ [ "kettle" ] ])

(* --- rules and constraints ------------------------------------------- *)

(* audits recorded at City level propagate down to every store *)
let rule_audit_down =
  Tgd.make ~name:"store_audited_down"
    ~body:
      [ Atom.make "audit_log" [ v "C"; v "A" ];
        Atom.make "city_store" [ v "C"; v "S" ] ]
    ~head:[ Atom.make "store_audited" [ v "S" ] ]
    ()

(* one tax rate per city *)
let egd_tax =
  Egd.make ~name:"egd_city_tax"
    ~body:
      [ Atom.make "store_tax" [ v "S1"; v "R1" ];
        Atom.make "store_tax" [ v "S2"; v "R2" ];
        Atom.make "city_store" [ v "C"; v "S1" ];
        Atom.make "city_store" [ v "C"; v "S2" ] ]
    (v "R1") (v "R2")

(* recalled items are not sold in Berlin (inter-dimensional NC) *)
let nc_recall =
  Nc.make ~name:"nc_recall_berlin"
    [ Atom.make "sales_fact" [ v "I"; v "S"; v "A" ];
      Atom.make "recalled" [ v "I" ];
      Atom.make "city_store" [ c "berlin"; v "S" ] ]

let sales_rows =
  [ ("lamp", "s1", 40.0); ("couch", "s1", 900.0); ("laptop", "s2", 1200.0);
    ("heater", "s2", 80.0); ("phone", "s3", 700.0); ("kettle", "s3", 25.0);
    ("lamp", "s4", 42.0) ]

let sales_relation schema_name =
  let schema =
    R.Rel_schema.of_names schema_name [ "item"; "store"; "amount" ]
  in
  R.Relation.of_tuples schema
    (List.map
       (fun (i, s, a) -> R.Tuple.of_list [ sym i; sym s; R.Value.real a ])
       sales_rows)

let ontology product_inst =
  let data = R.Instance.create () in
  let add rel =
    let r = R.Instance.declare data (R.Relation.schema rel) in
    R.Relation.iter (fun t -> ignore (R.Relation.add r t)) rel
  in
  add audit_log;
  add store_tax;
  add recalled;
  Md_ontology.make ~schema:md_schema
    ~dim_instances:[ product_inst; geo_instance ]
    ~data ~rules:[ rule_audit_down ] ~egds:[ egd_tax ] ~ncs:[ nc_recall ] ()

let source () =
  let inst = R.Instance.create () in
  let r = R.Instance.declare inst (R.Relation.schema (sales_relation "sales")) in
  R.Relation.iter (fun t -> ignore (R.Relation.add r t)) (sales_relation "sales");
  inst

let context product_inst =
  Context.make ~ontology:(ontology product_inst)
    ~mappings:[ { Context.source = "sales"; target = "sales_c" } ]
    ~rules:
      [ Tgd.make ~name:"sales_q"
          ~body:
            [ Atom.make "sales_c" [ v "I"; v "S"; v "A" ];
              Atom.make "store_audited" [ v "S" ] ]
          ~head:[ Atom.make "sales_q" [ v "I"; v "S"; v "A" ] ]
          () ]
    ~quality_versions:[ ("sales", "sales_q") ]
    ()

(* aggregate a sales relation by rolling items up to Category, via the
   summarizability-guarded Aggregate module *)
let totals_by_category ?check product_inst rel =
  Aggregate.rollup product_inst ~relation:rel ~group_position:0
    ~to_category:"Category" ~value_position:2 ~op:Aggregate.Sum ?check ()

let print_totals = function
  | Ok rows ->
    List.iter (fun r -> Format.printf "  %a@." Aggregate.pp_row r) rows
  | Error e -> Printf.printf "  refused: %s\n" e

let () =
  section "Sales under assessment";
  R.Table_fmt.print ~title:"sales" (sales_relation "sales");

  section "Summarizability diagnosis (bad classification)";
  let bad = product_instance product_links_bad in
  Format.printf "%a@." Summarizability.pp_report (Summarizability.diagnose bad);
  Printf.printf "\nItem -> Category summarizable? %b\n"
    (Summarizability.summarizable bad ~from_category:"Item" ~to_category:"Category");
  Printf.printf "guarded aggregation over the NON-STRICT hierarchy:\n";
  print_totals (totals_by_category bad (sales_relation "sales"));
  Printf.printf "forced anyway (~check:false; heater counted twice):\n";
  print_totals (totals_by_category ~check:false bad (sales_relation "sales"));

  section "After fixing the classification";
  let fixed = product_instance product_links_fixed in
  Printf.printf "strict: %b, homogeneous: %b\n"
    (Dim_instance.is_strict fixed) (Dim_instance.is_homogeneous fixed);
  Printf.printf "category totals (correct):\n";
  print_totals (totals_by_category fixed (sales_relation "sales"));

  section "Separability of the tax-rate EGD";
  let m = ontology fixed in
  let p = Md_ontology.program m in
  Format.printf "EGD: %a@." Egd.pp egd_tax;
  Format.printf "  non-affected-heads criterion: %a@."
    Separability.pp_verdict (Separability.non_affected_heads p);
  Format.printf "  categorical-positions criterion: %a@."
    Separability.pp_verdict (Md_ontology.separability m);

  section "Inter-dimensional constraint: recalled items in Berlin";
  Format.printf "%a@." Nc.pp nc_recall;
  (* the extensional sales under the ontology's own categorical copy *)
  let data_with_sales = Md_ontology.instance m in
  R.Relation.iter
    (fun t -> ignore (R.Instance.add_tuple data_with_sales "sales_fact" t))
    (sales_relation "sales_fact");
  let r = Chase.run p data_with_sales in
  Format.printf "chase over sales placed in the cube: %a@."
    Chase.pp_outcome r.Chase.outcome;
  Printf.printf
    "(kettle is recalled and only sold in Paris, so no violation)\n";
  ignore
    (R.Instance.add_tuple data_with_sales "sales_fact"
       (R.Tuple.of_list [ sym "kettle"; sym "s1"; R.Value.real 30.0 ]));
  let r2 = Chase.run p data_with_sales in
  Format.printf "after selling a kettle in Berlin: %a@." Chase.pp_outcome
    r2.Chase.outcome;

  section "Quality context: audited cities only";
  let assessment = Context.assess (context fixed) ~source:(source ()) in
  (match Context.quality_version assessment "sales" with
   | Some q ->
     R.Table_fmt.print ~title:"sales_q (audited stores only)" q;
     Format.printf "@.%a@." Assessment.pp_report (Assessment.report assessment);
     Printf.printf "\nquality category totals (Berlin only was audited):\n";
     print_totals (totals_by_category fixed q)
   | None -> print_endline "no quality version")
