(* Dimensional navigation (the paper's Examples 2, 5 and 6).

   - Example 2/5: a query about Mark's shifts in ward W2 has no answer
     in the extensional Shifts table; the institutional guideline
     (rule (8)) propagates WorkingSchedules data *down* from units to
     wards, inventing a labeled null for the unknown shift attribute.
   - Example 6: DischargePatients records that a patient left an
     institution without saying which unit they were in; rule (9)
     (form (10)) drills down with an *existential categorical* value —
     disjunctive knowledge at the unit level.

   Run with: dune exec examples/hospital_navigation.exe *)

module Hospital = Mdqa_hospital.Hospital
module Md_ontology = Mdqa_multidim.Md_ontology
module Navigation = Mdqa_multidim.Navigation
module R = Mdqa_relational
open Mdqa_datalog

let v = Term.var
let c s = Term.Const (R.Value.sym s)

let section title = Printf.printf "\n=== %s ===\n\n" title

let () =
  let m = Hospital.ontology () in

  section "Extensional data";
  R.Table_fmt.print ~title:"working_schedules (Table III)"
    Hospital.working_schedules;
  print_newline ();
  R.Table_fmt.print ~title:"shifts (Table IV, extensional)" Hospital.shifts;

  section "Rule (8): downward navigation Unit -> Ward";
  Format.printf "%a@." Tgd.pp Hospital.rule8;
  let chased = Md_ontology.chase m in
  Format.printf "chase: %a@." Chase.pp_outcome chased.Chase.outcome;
  let shifts_after = R.Instance.get chased.Chase.instance "shifts" in
  print_newline ();
  R.Table_fmt.print ~title:"shifts after the chase (nulls = unknown shifts)"
    shifts_after;

  section "Example 5: the dates Mark works in ward W1";
  Format.printf "query: %a@." Query.pp Hospital.example5_query;
  (match Md_ontology.certain_answers m Hospital.example5_query with
   | Query.Ok answers ->
     List.iter (fun t -> Format.printf "  answer: %a@." R.Tuple.pp t) answers
   | _ -> print_endline "  chase failed");
  let proof = Md_ontology.proof_answers m Hospital.example5_query in
  Printf.printf
    "DeterministicWSQAns agrees (%d resolution steps, complete=%b):\n"
    proof.Proof.steps proof.Proof.complete;
  List.iter (fun t -> Format.printf "  answer: %a@." R.Tuple.pp t)
    proof.Proof.answers;

  section "The generated shift value is not certain";
  let q_shift =
    Query.make ~name:"marks_shift" ~head:[ v "S" ]
      [ Atom.make "shifts" [ c "W1"; c "Sep/9"; c "Mark"; v "S" ] ]
  in
  (match Md_ontology.certain_answers m q_shift with
   | Query.Ok [] ->
     print_endline
       "asking for the shift itself returns nothing: the chase only\n\
        knows a labeled null there (incomplete lower-level data)."
   | Query.Ok _ -> print_endline "unexpected certain answer!"
   | _ -> print_endline "chase failed");

  section "Example 6: disjunctive downward navigation (rule (9))";
  R.Table_fmt.print ~title:"discharge_patients (Table V)"
    Hospital.discharge_patients;
  print_newline ();
  Format.printf "%a@.@." Tgd.pp Hospital.rule9;
  let pu = R.Instance.get chased.Chase.instance "patient_unit" in
  R.Table_fmt.print
    ~title:"patient_unit after the chase (null units from discharges)" pu;
  let q_joint =
    Query.boolean
      [ Atom.make "institution_unit" [ c "H2"; v "U" ];
        Atom.make "patient_unit" [ v "U"; c "Oct/5"; c "Elvis Costello" ] ]
  in
  Printf.printf
    "\nBCQ 'was Elvis Costello in *some* unit of H2 on Oct/5?': %b\n"
    (Proof.entails (Md_ontology.program m) (Md_ontology.instance m) q_joint);

  section "Data-level navigation API (no chase)";
  let rolled =
    Navigation.rollup Hospital.hospital_instance
      ~relation:Hospital.patient_ward ~position:0 ~to_category:"Unit"
      ~name:"patient_unit_rolled" ()
  in
  R.Table_fmt.print ~title:"Navigation.rollup of patient_ward to Unit" rolled
